open Hls_cdfg

type t = {
  g : Dfg.t;
  ops : Dfg.nid array;
  index : (Dfg.nid, int) Hashtbl.t;
  pred_table : int list array;
  succ_table : int list array;
  cls_table : Op.fu_class array;
}

(* Occupying ancestors of a node, looking through free chains. *)
let rec eff_sources g id acc =
  if Dfg.occupies_step g id then id :: acc
  else
    match Dfg.op g id with
    | Op.Const _ | Op.Read _ -> acc
    | _ -> List.fold_left (fun acc a -> eff_sources g a acc) acc (Dfg.args g id)

let of_dfg g =
  let ops = Array.of_list (Dfg.compute_ops g) in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i nid -> Hashtbl.replace index nid i) ops;
  let n = Array.length ops in
  let pred_table = Array.make n [] in
  let succ_table = Array.make n [] in
  let cls_table = Array.make n Op.C_alu in
  Array.iteri
    (fun i nid ->
      cls_table.(i) <- Dfg.fu_class_of g nid;
      let sources =
        List.fold_left (fun acc a -> eff_sources g a acc) [] (Dfg.args g nid)
        |> List.sort_uniq compare
      in
      let pred_idx = List.map (Hashtbl.find index) sources in
      pred_table.(i) <- pred_idx;
      List.iter (fun p -> succ_table.(p) <- i :: succ_table.(p)) pred_idx)
    ops;
  Array.iteri (fun i s -> succ_table.(i) <- List.sort compare s) succ_table;
  { g; ops; index; pred_table; succ_table; cls_table }

let n_ops t = Array.length t.ops
let nid_of t i = t.ops.(i)
let index_of t nid = Hashtbl.find t.index nid
let preds t i = t.pred_table.(i)
let succs t i = t.succ_table.(i)
let cls t i = t.cls_table.(i)

let asap t =
  let n = n_ops t in
  let a = Array.make n 1 in
  for i = 0 to n - 1 do
    a.(i) <- 1 + List.fold_left (fun acc p -> max acc a.(p)) 0 t.pred_table.(i)
  done;
  a

let critical_length t =
  let a = asap t in
  Array.fold_left max 0 a

let alap t ~deadline =
  let n = n_ops t in
  let cl = critical_length t in
  if deadline < cl then
    invalid_arg
      (Printf.sprintf "Depgraph.alap: deadline %d below critical path %d" deadline cl);
  let l = Array.make n deadline in
  for i = n - 1 downto 0 do
    l.(i) <-
      List.fold_left (fun acc s -> min acc (l.(s) - 1)) deadline t.succ_table.(i)
  done;
  l

let path_length t =
  let n = n_ops t in
  let pl = Array.make n 1 in
  for i = n - 1 downto 0 do
    pl.(i) <- 1 + List.fold_left (fun acc s -> max acc pl.(s)) 0 t.succ_table.(i)
  done;
  pl

let to_schedule t ~steps =
  Schedule.make t.g ~steps:(fun nid -> steps.(index_of t nid))
