(** As-soon-as-possible scheduling (Fig 3).

    Operations are taken in the topological order given by the
    specification and each is put into the earliest control step allowed
    by its dependences and the resource limits. No priority is given to
    critical-path operations, so under tight limits a non-critical
    operation scheduled first can block a critical one — the
    suboptimality the paper illustrates and list scheduling fixes. *)

open Hls_cdfg

val schedule : limits:Limits.t -> Dfg.t -> Schedule.t

val schedule_dep : limits:Limits.t -> Depgraph.t -> int array
(** Same, on a prebuilt dependence graph; returns op-indexed steps. *)

val unconstrained : Dfg.t -> Schedule.t
(** ASAP with unlimited resources: the maximally parallel schedule. *)
