open Hls_cdfg

let schedule_dep ?(node_cap = 24) ~limits dep =
  let n = Depgraph.n_ops dep in
  if n > node_cap then None
  else begin
    let incumbent = List_sched.schedule_dep ~limits dep in
    let best_len = ref (Array.fold_left max 1 incumbent) in
    let best = ref (Array.copy incumbent) in
    (* tail.(i): ops on the longest chain from op i to a sink, inclusive *)
    let tail = Depgraph.path_length dep in
    let steps = Array.make n 0 in
    (* per-step per-class usage of the partial schedule *)
    let usage : (int * Op.fu_class, int) Hashtbl.t = Hashtbl.create 64 in
    let used s cls = match Hashtbl.find_opt usage (s, cls) with Some k -> k | None -> 0 in
    let counts_at s =
      List.filter_map
        (fun cls -> match used s cls with 0 -> None | k -> Some (cls, k))
        [ Op.C_alu; Op.C_mul; Op.C_div; Op.C_shift ]
    in
    let rec assign i current_max =
      if i = n then begin
        if current_max < !best_len then begin
          best_len := current_max;
          best := Array.copy steps
        end
      end
      else begin
        let ready =
          1 + List.fold_left (fun acc p -> max acc steps.(p)) 0 (Depgraph.preds dep i)
        in
        let cls = Depgraph.cls dep i in
        (* latest step worth trying: finishing op i at step s implies a
           schedule of at least s + tail(i) - 1 steps *)
        let s = ref ready in
        let continue = ref true in
        while !continue do
          let lb = max current_max (!s + tail.(i) - 1) in
          if lb >= !best_len then continue := false
          else begin
            if Limits.can_add limits ~counts:(counts_at !s) cls then begin
              steps.(i) <- !s;
              Hashtbl.replace usage (!s, cls) (used !s cls + 1);
              assign (i + 1) (max current_max !s);
              Hashtbl.replace usage (!s, cls) (used !s cls - 1);
              steps.(i) <- 0
            end;
            incr s
          end
        done
      end
    in
    assign 0 1;
    Some !best
  end

let schedule ?node_cap ~limits g =
  let dep = Depgraph.of_dfg g in
  match schedule_dep ?node_cap ~limits dep with
  | None -> None
  | Some steps -> Some (Depgraph.to_schedule dep ~steps)
