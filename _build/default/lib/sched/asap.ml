open Hls_cdfg

(* usage.(s) is the per-class tally of ops already placed in step s,
   stored in a growable hashtable keyed by step. *)
let make_usage () : (int, (Op.fu_class * int) list) Hashtbl.t = Hashtbl.create 16

let counts_at usage s = match Hashtbl.find_opt usage s with Some c -> c | None -> []

let add_at usage s cls =
  let counts = counts_at usage s in
  let cur = match List.assoc_opt cls counts with Some n -> n | None -> 0 in
  Hashtbl.replace usage s ((cls, cur + 1) :: List.remove_assoc cls counts)

let schedule_dep ~limits dep =
  let n = Depgraph.n_ops dep in
  let steps = Array.make n 0 in
  let usage = make_usage () in
  for i = 0 to n - 1 do
    let ready =
      1 + List.fold_left (fun acc p -> max acc steps.(p)) 0 (Depgraph.preds dep i)
    in
    let cls = Depgraph.cls dep i in
    let rec place s =
      if Limits.can_add limits ~counts:(counts_at usage s) cls then s else place (s + 1)
    in
    let s = place ready in
    steps.(i) <- s;
    add_at usage s cls
  done;
  steps

let schedule ~limits g =
  let dep = Depgraph.of_dfg g in
  Depgraph.to_schedule dep ~steps:(schedule_dep ~limits dep)

let unconstrained g = schedule ~limits:Limits.Unlimited g
