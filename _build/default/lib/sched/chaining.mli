(** Delay-aware scheduling with operator chaining.

    The unit-delay schedulers assume one operation per control step per
    unit. Real units have delays ("finding the most efficient possible
    schedule for the real hardware requires knowing the delays for the
    different operations"), and a data-dependent pair may share a
    control step when its combined combinational delay fits the clock
    period — while "too many operations chained together in the same
    control step" (the YSC's concern) forces the step to split.

    This scheduler is list scheduling with a per-step time budget: an
    operation may start in its predecessor's step at the predecessor's
    finish time if the sum stays within the period, and otherwise waits
    for the next step. Sweeping the period traces the classic cycle-time
    / step-count trade-off; the product (total latency in ns) has an
    interior optimum.

    Chained schedules intentionally violate the non-chaining invariant
    of {!Schedule} (an occupying consumer in its producer's step), so
    they carry their own representation and validity checker; like
    {!Pipeline}, this is an analysis-level scheduler — the RTL builder
    targets non-chained schedules. *)

open Hls_cdfg

type t = {
  steps : int array;  (** control step per dependence-graph op index *)
  ready_ns : float array;  (** intra-step completion time per op *)
  n_steps : int;
  period_ns : float;
  dep : Depgraph.t;
}

val op_delay_ns : Op.fu_class -> float
(** Combinational delay of the cheapest library unit of the class. *)

val schedule : period_ns:float -> limits:Limits.t -> Dfg.t -> t
(** Raises [Invalid_argument] if the period cannot fit even a single
    slowest operation (plus register/mux overhead). *)

val verify : ?limits:Limits.t -> t -> (unit, string) result
(** Dependences hold (same-step consumers start after their producers
    and fit the period; cross-step consumers are later) and per-step
    resource limits hold (default unconstrained). *)

val sweep :
  limits:Limits.t -> periods_ns:float list -> Dfg.t ->
  (float * int * float) list
(** For each feasible clock period: (period, steps, latency = steps ×
    period). Infeasible periods are skipped. *)
