open Hls_cdfg

type t = Serial | Total of int | Classes of (Op.fu_class * int) list | Unlimited

let occupying_class = function
  | Op.C_alu | Op.C_mul | Op.C_div | Op.C_shift -> true
  | Op.C_free | Op.C_none -> false

let total counts = List.fold_left (fun acc (_, n) -> acc + n) 0 counts

let class_count counts cls =
  match List.assoc_opt cls counts with Some n -> n | None -> 0

let can_add t ~counts cls =
  if not (occupying_class cls) then true
  else
    match t with
    | Unlimited -> true
    | Serial -> total counts < 1
    | Total k -> total counts < k
    | Classes caps -> (
        match List.assoc_opt cls caps with
        | None -> true
        | Some cap -> class_count counts cls < cap)

let within t ~counts =
  match t with
  | Unlimited -> true
  | Serial -> total counts <= 1
  | Total k -> total counts <= k
  | Classes caps ->
      List.for_all (fun (cls, cap) -> class_count counts cls <= cap) caps

let to_string = function
  | Serial -> "serial"
  | Total k -> Printf.sprintf "%d FUs" k
  | Unlimited -> "unlimited"
  | Classes caps ->
      caps
      |> List.map (fun (cls, n) -> Printf.sprintf "%d %s" n (Op.fu_class_to_string cls))
      |> String.concat ", "

let serial = Serial
let two_fu = Total 2
