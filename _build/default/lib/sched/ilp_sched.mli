(** Scheduling as a 0/1 mathematical program (Hafer & Parker's
    formulation, section 3.2.2 of the paper): one variable per
    (operation, control step) assignment, exactly-one selection per
    operation, precedence as forbidden pairs, resource limits as
    at-most-k sums over each step. Solved exactly with the
    {!Hls_util.Binprog} branch-and-bound; intended as the optimality
    oracle on small blocks (the heuristic schedulers cover the rest). *)

open Hls_cdfg

val schedule :
  ?node_cap:int -> limits:Limits.t -> Dfg.t -> Schedule.t option
(** Minimum-length schedule under the limits, found by solving
    feasibility at increasing deadlines. [None] when the block exceeds
    [node_cap] operations (default 12). *)
