(** Transformational scheduling (the Yorktown Silicon Compiler style).

    Instead of constructing a schedule operation by operation, start from
    a default schedule and repeatedly apply local transformations:

    - [from_parallel]: start with everything as early as possible (the
      YSC's "all operations in the same control step"), then, while some
      step is over capacity, displace the lowest-priority excess
      operations one step later and re-tighten their successors;
    - [from_serial]: start maximally serial (one op per step, EXPL's
      default), then compact — repeatedly move each operation to the
      earliest step with both capacity and satisfied dependences,
      deleting steps that fall empty.

    Both directions converge to legal schedules; the benchmarks compare
    their quality against the constructive schedulers. *)

open Hls_cdfg

val from_parallel : limits:Limits.t -> Dfg.t -> Schedule.t
val from_serial : limits:Limits.t -> Dfg.t -> Schedule.t

val from_parallel_dep : limits:Limits.t -> Depgraph.t -> int array
val from_serial_dep : limits:Limits.t -> Depgraph.t -> int array
