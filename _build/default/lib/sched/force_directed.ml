
(* Constrained ASAP/ALAP honoring already-fixed operations. *)
let frames dep ~deadline ~fixed =
  let n = Depgraph.n_ops dep in
  let asap = Array.make n 1 in
  for i = 0 to n - 1 do
    let lo =
      1 + List.fold_left (fun acc p -> max acc asap.(p)) 0 (Depgraph.preds dep i)
    in
    asap.(i) <- (match fixed.(i) with Some s -> s | None -> lo)
  done;
  let alap = Array.make n deadline in
  for i = n - 1 downto 0 do
    let hi =
      List.fold_left (fun acc s -> min acc (alap.(s) - 1)) deadline (Depgraph.succs dep i)
    in
    alap.(i) <- (match fixed.(i) with Some s -> s | None -> hi)
  done;
  (asap, alap)

let distribution dep ~asap ~alap ~cls ~deadline =
  let dg = Array.make deadline 0.0 in
  for i = 0 to Depgraph.n_ops dep - 1 do
    if Depgraph.cls dep i = cls then begin
      let width = alap.(i) - asap.(i) + 1 in
      let p = 1.0 /. float_of_int width in
      for s = asap.(i) to alap.(i) do
        dg.(s - 1) <- dg.(s - 1) +. p
      done
    end
  done;
  dg

let avg_over dg lo hi =
  let sum = ref 0.0 in
  for s = lo to hi do
    sum := !sum +. dg.(s - 1)
  done;
  !sum /. float_of_int (hi - lo + 1)

let schedule_dep ~deadline dep =
  let n = Depgraph.n_ops dep in
  let cl = Depgraph.critical_length dep in
  if deadline < cl then
    invalid_arg
      (Printf.sprintf "Force_directed: deadline %d below critical path %d" deadline cl);
  let fixed = Array.make n None in
  let classes =
    List.sort_uniq compare (List.init n (fun i -> Depgraph.cls dep i))
  in
  let remaining = ref n in
  while !remaining > 0 do
    let asap, alap = frames dep ~deadline ~fixed in
    let dgs =
      List.map (fun c -> (c, distribution dep ~asap ~alap ~cls:c ~deadline)) classes
    in
    let dg_of c = List.assoc c dgs in
    (* self force of placing op i at step s *)
    let self_force i s =
      let dg = dg_of (Depgraph.cls dep i) in
      dg.(s - 1) -. avg_over dg asap.(i) alap.(i)
    in
    (* change in a neighbor's average distribution when its frame is
       clipped by fixing op i at step s *)
    let neighbor_force i s =
      let clip j (lo, hi) =
        let dg = dg_of (Depgraph.cls dep j) in
        if lo > hi then 0.0 (* infeasible placements are filtered below *)
        else avg_over dg lo hi -. avg_over dg asap.(j) alap.(j)
      in
      List.fold_left
        (fun acc p -> acc +. clip p (asap.(p), min alap.(p) (s - 1)))
        0.0 (Depgraph.preds dep i)
      +. List.fold_left
           (fun acc q -> acc +. clip q (max asap.(q) (s + 1), alap.(q)))
           0.0 (Depgraph.succs dep i)
    in
    let best = ref None in
    for i = 0 to n - 1 do
      if fixed.(i) = None then
        for s = asap.(i) to alap.(i) do
          (* a placement must leave every neighbor a feasible frame *)
          let feasible =
            List.for_all (fun p -> asap.(p) <= s - 1) (Depgraph.preds dep i)
            && List.for_all (fun q -> alap.(q) >= s + 1) (Depgraph.succs dep i)
          in
          if feasible then begin
            let f = self_force i s +. neighbor_force i s in
            match !best with
            | Some (bf, _, _) when bf <= f -> ()
            | _ -> best := Some (f, i, s)
          end
        done
    done;
    match !best with
    | Some (_, i, s) ->
        fixed.(i) <- Some s;
        decr remaining
    | None -> invalid_arg "Force_directed: no feasible placement (internal)"
  done;
  Array.map (function Some s -> s | None -> 1) fixed

let schedule ~deadline g =
  let dep = Depgraph.of_dfg g in
  Depgraph.to_schedule dep ~steps:(schedule_dep ~deadline dep)
