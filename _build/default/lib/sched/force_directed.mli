(** Force-directed scheduling (Paulin & Knight's HAL; Fig 5).

    Time-constrained: given a deadline, every operation's possible step
    range (ASAP–ALAP time frame) feeds a per-class {e distribution graph}
    — for each control step, the expected number of concurrent operations
    assuming all schedules equally likely (an op with a k-step frame
    contributes 1/k to each step). Operations are then fixed one at a
    time, choosing the (op, step) pair with the lowest force — the
    placement that best balances the distribution — and frames are
    recomputed after each placement. The functional units required are
    the per-class maxima of the final distribution. *)

open Hls_cdfg

val distribution :
  Depgraph.t -> asap:int array -> alap:int array -> cls:Op.fu_class -> deadline:int ->
  float array
(** Distribution graph for one class over steps [1..deadline] (index 0 of
    the result is step 1). This is the quantity plotted in Fig 5. *)

val schedule : deadline:int -> Dfg.t -> Schedule.t
(** Raises [Invalid_argument] if [deadline] is below the critical path
    length. *)

val schedule_dep : deadline:int -> Depgraph.t -> int array
