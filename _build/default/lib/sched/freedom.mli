(** Freedom-based scheduling (Parker's MAHA).

    The critical path is scheduled first (at its unique steps). The
    remaining operations are then placed one at a time in order of
    increasing freedom — the width of the control-step range still open
    to them — so that the operations most at risk of being blocked are
    handled before their options disappear. Each placement picks the step
    within the current range that adds the least functional-unit cost
    (no new unit if an existing one of the class is idle in that step).
    The result meets the critical-path deadline; the implied unit counts
    are the allocation. *)

val schedule : ?deadline:int -> Hls_cdfg.Dfg.t -> Schedule.t
(** [deadline] defaults to the critical path length. *)

val schedule_dep : ?deadline:int -> Depgraph.t -> int array
