
let counts_of dep steps s =
  let tally = Hashtbl.create 8 in
  Array.iteri
    (fun i si ->
      if si = s then begin
        let cls = Depgraph.cls dep i in
        let cur = try Hashtbl.find tally cls with Not_found -> 0 in
        Hashtbl.replace tally cls (cur + 1)
      end)
    steps;
  Hashtbl.fold (fun cls k acc -> (cls, k) :: acc) tally []

(* remove one op's contribution from a tally *)
let counts_without counts cls =
  match List.assoc_opt cls counts with
  | Some 1 -> List.remove_assoc cls counts
  | Some k -> (cls, k - 1) :: List.remove_assoc cls counts
  | None -> counts

let from_parallel_dep ~limits dep =
  let n = Depgraph.n_ops dep in
  let steps = Depgraph.asap dep in
  let prio = Depgraph.path_length dep in
  let retighten () =
    (* push successors down so dependences hold (ops are topological) *)
    for i = 0 to n - 1 do
      let lo = 1 + List.fold_left (fun acc p -> max acc steps.(p)) 0 (Depgraph.preds dep i) in
      if steps.(i) < lo then steps.(i) <- lo
    done
  in
  let find_violation () =
    let max_step = Array.fold_left max 1 steps in
    let rec scan s =
      if s > max_step then None
      else begin
        let counts = counts_of dep steps s in
        if Limits.within limits ~counts then scan (s + 1) else Some (s, counts)
      end
    in
    scan 1
  in
  let fuel = ref (n * n * 4 + 64) in
  let rec fix () =
    decr fuel;
    if !fuel <= 0 then ()
    else
      match find_violation () with
      | None -> ()
      | Some (s, counts) ->
          (* displace the lowest-priority op of an over-capacity class:
             a class is over capacity iff, with one of its ops removed,
             adding it back still would not fit *)
          let over_capacity cls =
            not (Limits.can_add limits ~counts:(counts_without counts cls) cls)
          in
          let movable =
            List.filter
              (fun i -> steps.(i) = s && over_capacity (Depgraph.cls dep i))
              (List.init n (fun i -> i))
          in
          let victim =
            List.fold_left
              (fun best i ->
                match best with
                | None -> Some i
                | Some b ->
                    if (prio.(i), -i) < (prio.(b), -b) then Some i else best)
              None movable
          in
          (match victim with
          | Some i -> steps.(i) <- s + 1
          | None -> ());
          retighten ();
          fix ()
  in
  fix ();
  match find_violation () with
  | None -> steps
  | Some _ ->
      (* fuel exhausted on a pathological instance: fall back to a legal
         constructive schedule *)
      List_sched.schedule_dep ~limits dep

let from_serial_dep ~limits dep =
  let n = Depgraph.n_ops dep in
  (* maximally serial: one op per step in topological order *)
  let steps = Array.init n (fun i -> i + 1) in
  let changed = ref true in
  let fuel = ref (n * n + 64) in
  while !changed && !fuel > 0 do
    changed := false;
    decr fuel;
    for i = 0 to n - 1 do
      let ready =
        1 + List.fold_left (fun acc p -> max acc steps.(p)) 0 (Depgraph.preds dep i)
      in
      let cls = Depgraph.cls dep i in
      (* earliest step >= ready with room, considering ops other than i *)
      let rec try_step s =
        if s >= steps.(i) then steps.(i)
        else begin
          let counts = counts_of dep steps s in
          if Limits.can_add limits ~counts cls then s else try_step (s + 1)
        end
      in
      let s = try_step ready in
      if s < steps.(i) then begin
        steps.(i) <- s;
        changed := true
      end
    done
  done;
  (* compact empty steps *)
  let max_step = Array.fold_left max 1 steps in
  let occupied = Array.make (max_step + 1) false in
  Array.iter (fun s -> occupied.(s) <- true) steps;
  let shift = Array.make (max_step + 1) 0 in
  let gap = ref 0 in
  for s = 1 to max_step do
    if not occupied.(s) then incr gap;
    shift.(s) <- !gap
  done;
  Array.map (fun s -> s - shift.(s)) steps

let from_parallel ~limits g =
  let dep = Depgraph.of_dfg g in
  Depgraph.to_schedule dep ~steps:(from_parallel_dep ~limits dep)

let from_serial ~limits g =
  let dep = Depgraph.of_dfg g in
  Depgraph.to_schedule dep ~steps:(from_serial_dep ~limits dep)
