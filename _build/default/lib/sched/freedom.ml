open Hls_cdfg

let frames dep ~deadline ~fixed =
  let n = Depgraph.n_ops dep in
  let asap = Array.make n 1 in
  for i = 0 to n - 1 do
    let lo = 1 + List.fold_left (fun acc p -> max acc asap.(p)) 0 (Depgraph.preds dep i) in
    asap.(i) <- (match fixed.(i) with Some s -> s | None -> lo)
  done;
  let alap = Array.make n deadline in
  for i = n - 1 downto 0 do
    let hi =
      List.fold_left (fun acc s -> min acc (alap.(s) - 1)) deadline (Depgraph.succs dep i)
    in
    alap.(i) <- (match fixed.(i) with Some s -> s | None -> hi)
  done;
  (asap, alap)

let schedule_dep ?deadline dep =
  let n = Depgraph.n_ops dep in
  let cl = max 1 (Depgraph.critical_length dep) in
  let deadline = match deadline with Some d -> max d cl | None -> cl in
  let fixed = Array.make n None in
  (* usage.(cls)(s) — ops of the class already placed in step s *)
  let usage : (Op.fu_class * int, int) Hashtbl.t = Hashtbl.create 32 in
  let used cls s = match Hashtbl.find_opt usage (cls, s) with Some k -> k | None -> 0 in
  let fu_count : (Op.fu_class, int) Hashtbl.t = Hashtbl.create 8 in
  let fus cls = match Hashtbl.find_opt fu_count cls with Some k -> k | None -> 0 in
  let place i s =
    fixed.(i) <- Some s;
    let cls = Depgraph.cls dep i in
    Hashtbl.replace usage (cls, s) (used cls s + 1);
    if used cls s > fus cls then Hashtbl.replace fu_count cls (used cls s)
  in
  (* schedule the critical path first: ops with zero freedom *)
  let asap0, alap0 = frames dep ~deadline ~fixed in
  for i = 0 to n - 1 do
    if alap0.(i) = asap0.(i) then place i asap0.(i)
  done;
  let remaining () =
    List.filter (fun i -> fixed.(i) = None) (List.init n (fun i -> i))
  in
  let rec loop () =
    match remaining () with
    | [] -> ()
    | rem ->
        let asap, alap = frames dep ~deadline ~fixed in
        (* least freedom first *)
        let i =
          List.fold_left
            (fun best j ->
              let fr j = alap.(j) - asap.(j) in
              match best with
              | None -> Some j
              | Some b -> if fr j < fr b then Some j else best)
            None rem
        in
        let i = match i with Some i -> i | None -> assert false in
        let cls = Depgraph.cls dep i in
        (* best step in range: no new FU if possible, then least-used,
           then earliest *)
        let candidates = List.init (alap.(i) - asap.(i) + 1) (fun k -> asap.(i) + k) in
        let cost s = if used cls s < fus cls then (0, used cls s, s) else (1, used cls s, s) in
        let s =
          match List.sort (fun a b -> compare (cost a) (cost b)) candidates with
          | s :: _ -> s
          | [] -> assert false
        in
        place i s;
        loop ()
  in
  loop ();
  Array.map (function Some s -> s | None -> 1) fixed

let schedule ?deadline g =
  let dep = Depgraph.of_dfg g in
  Depgraph.to_schedule dep ~steps:(schedule_dep ?deadline dep)
