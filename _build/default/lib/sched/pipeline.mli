(** Pipelined (modulo) scheduling — the paper's pointer to Park &
    Parker's Sehwa: "synthesis of pipelined data paths is a design domain
    which has now been characterized by a foundation of theory and
    implemented by the program Sehwa".

    A pipelined datapath restarts the block every [ii] control steps
    (the initiation interval). Two overlapping executions may not demand
    the same functional unit in the same cycle, so resource usage is
    counted modulo [ii]: an operation at step [s] loads slot
    [(s-1) mod ii]. Smaller [ii] = higher throughput = more units.

    [schedule ~limits ~ii] is modulo list scheduling; [min_ii] searches
    upward from the resource/recurrence lower bound for the smallest
    feasible interval. Blocks are assumed loop-free inside (no
    recurrences), which holds for every straight-line block the compiler
    emits; cross-iteration dependences through variables are the user's
    contract, as in Sehwa's functional pipelines. *)

open Hls_cdfg

type result = {
  schedule : Schedule.t;
  ii : int;  (** initiation interval actually achieved *)
  modulo_usage : (int * (Op.fu_class * int) list) list;
      (** per slot [0..ii-1], the steady-state per-class unit demand *)
}

val schedule : limits:Limits.t -> ii:int -> Dfg.t -> result option
(** Modulo list scheduling at a fixed initiation interval. [None] when
    the interval is infeasible under the limits (an op can never be
    placed). *)

val min_ii : limits:Limits.t -> Dfg.t -> result
(** Smallest feasible initiation interval (searches from the resource
    lower bound; always terminates because [ii = schedule length] is
    feasible). *)

val resource_min_ii : limits:Limits.t -> Dfg.t -> int
(** Classic resource-constrained lower bound:
    max over classes of ⌈ops-of-class / units-of-class⌉. *)

val throughput_table :
  limits:Limits.t -> Dfg.t -> (int * int * (Op.fu_class * int) list) list
(** Sehwa's cost/performance trade-off curve: for each initiation
    interval (ascending), the fewest general-purpose units admitting a
    modulo schedule, as (ii, latency, steady-state per-class demand).
    Rows that stop saving hardware are elided, so the curve is strictly
    decreasing in units. The [limits] argument is kept for interface
    stability and ignored. *)
