open Hls_cdfg

type result = {
  schedule : Schedule.t;
  ii : int;
  modulo_usage : (int * (Op.fu_class * int) list) list;
}

let occupying_classes = [ Op.C_alu; Op.C_mul; Op.C_div; Op.C_shift ]

let class_count dep cls =
  let n = Depgraph.n_ops dep in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if Depgraph.cls dep i = cls then incr count
  done;
  !count

let capacity_of limits cls =
  match limits with
  | Limits.Unlimited -> max_int
  | Limits.Serial -> 1
  | Limits.Total k -> k
  | Limits.Classes caps -> (
      match List.assoc_opt cls caps with Some c -> c | None -> max_int)

let resource_min_ii_dep ~limits dep =
  let by_class =
    List.fold_left
      (fun acc cls ->
        let ops = class_count dep cls in
        let cap = capacity_of limits cls in
        if ops = 0 || cap = max_int then acc
        else max acc ((ops + cap - 1) / cap))
      1 occupying_classes
  in
  match limits with
  | Limits.Serial | Limits.Total _ ->
      (* the budget is shared across classes *)
      let total_ops =
        List.fold_left (fun acc cls -> acc + class_count dep cls) 0 occupying_classes
      in
      let k = capacity_of limits Op.C_alu in
      max by_class ((total_ops + k - 1) / k)
  | Limits.Classes _ | Limits.Unlimited -> by_class

let resource_min_ii ~limits g = resource_min_ii_dep ~limits (Depgraph.of_dfg g)

(* Modulo list scheduling: usage is tallied per slot = (step-1) mod ii,
   because iterations started every ii cycles overlap in those slots. *)
let schedule_dep ~limits ~ii dep =
  let n = Depgraph.n_ops dep in
  let slot_counts = Array.make ii [] in
  let add_at slot cls =
    let cur =
      match List.assoc_opt cls slot_counts.(slot) with Some k -> k | None -> 0
    in
    slot_counts.(slot) <- (cls, cur + 1) :: List.remove_assoc cls slot_counts.(slot)
  in
  let prio = Depgraph.path_length dep in
  let steps = Array.make n 0 in
  let remaining = ref (List.init n (fun i -> i)) in
  let feasible = ref true in
  while !remaining <> [] && !feasible do
    let ready =
      List.filter
        (fun i -> List.for_all (fun p -> steps.(p) > 0) (Depgraph.preds dep i))
        !remaining
    in
    match
      List.sort
        (fun a b ->
          let c = compare prio.(b) prio.(a) in
          if c <> 0 then c else compare a b)
        ready
    with
    | [] -> feasible := false
    | i :: _ ->
        let lo =
          1 + List.fold_left (fun acc p -> max acc steps.(p)) 0 (Depgraph.preds dep i)
        in
        let cls = Depgraph.cls dep i in
        (* searching ii consecutive steps visits every slot once *)
        let rec try_step s tried =
          if tried >= ii then None
          else begin
            let slot = (s - 1) mod ii in
            if Limits.can_add limits ~counts:slot_counts.(slot) cls then Some s
            else try_step (s + 1) (tried + 1)
          end
        in
        (match try_step lo 0 with
        | Some s ->
            steps.(i) <- s;
            add_at ((s - 1) mod ii) cls
        | None -> feasible := false);
        remaining := List.filter (fun j -> j <> i) !remaining
  done;
  if !feasible then Some steps else None

let modulo_usage_of dep steps ~ii =
  let table = Array.make ii [] in
  Array.iteri
    (fun i s ->
      let slot = (s - 1) mod ii in
      let cls = Depgraph.cls dep i in
      let cur = match List.assoc_opt cls table.(slot) with Some k -> k | None -> 0 in
      table.(slot) <- (cls, cur + 1) :: List.remove_assoc cls table.(slot))
    steps;
  Array.to_list (Array.mapi (fun slot counts -> (slot, List.sort compare counts)) table)

let schedule ~limits ~ii g =
  if ii < 1 then invalid_arg "Pipeline.schedule: ii must be positive";
  let dep = Depgraph.of_dfg g in
  match schedule_dep ~limits ~ii dep with
  | None -> None
  | Some steps ->
      Some
        {
          schedule = Depgraph.to_schedule dep ~steps;
          ii;
          modulo_usage = modulo_usage_of dep steps ~ii;
        }

let min_ii ~limits g =
  let dep = Depgraph.of_dfg g in
  let lower = resource_min_ii_dep ~limits dep in
  let rec search ii =
    match schedule ~limits ~ii g with Some r -> r | None -> search (ii + 1)
  in
  search (max 1 lower)

(* steady-state unit demand of a modulo schedule: per class, the maximum
   concurrent slot load *)
let demand_of r =
  List.fold_left
    (fun acc (_, counts) ->
      List.fold_left
        (fun acc (cls, k) ->
          let cur = match List.assoc_opt cls acc with Some c -> c | None -> 0 in
          (cls, max cur k) :: List.remove_assoc cls acc)
        acc counts)
    [] r.modulo_usage
  |> List.sort compare

let throughput_table ~limits g =
  ignore limits;
  let dep = Depgraph.of_dfg g in
  let sequential = max 1 (Depgraph.n_ops dep) in
  (* for each interval, the fewest general-purpose units that still
     admit a modulo schedule — Sehwa's cost/performance curve *)
  let min_units ii =
    let rec search k =
      if k > sequential then None
      else
        match schedule ~limits:(Limits.Total k) ~ii g with
        | Some r -> Some (k, r)
        | None -> search (k + 1)
    in
    search 1
  in
  let total demand = List.fold_left (fun acc (_, k) -> acc + k) 0 demand in
  let rec collect ii acc last_units =
    if ii > sequential then List.rev acc
    else
      match min_units ii with
      | Some (_, r) ->
          (* keep a row only while it keeps saving hardware (units =
             per-class steady-state demand, what the datapath must buy) *)
          let d = demand_of r in
          let acc, last_units =
            if total d < last_units then
              ((ii, Schedule.n_steps r.schedule, d) :: acc, total d)
            else (acc, last_units)
          in
          collect (ii + 1) acc last_units
      | None -> collect (ii + 1) acc last_units
  in
  collect 1 [] max_int
