(** Resource limits on functional units, the constraint side of
    resource-constrained scheduling.

    - [Serial] — one step-occupying operation per control step: the
      paper's "trivial special case [that] uses just one functional unit
      and one memory" (each operation in its own step).
    - [Total k] — at most [k] concurrent operations per step, on [k]
      general-purpose functional units; [Total 2] is the paper's "two
      functional units" configuration for the optimized sqrt (free shifts
      and zero-detects do not count).
    - [Classes l] — at most [n] concurrent operations of each listed
      functional-unit class (e.g. one ALU and one multiplier); unlisted
      classes are unconstrained.
    - [Unlimited] — no constraint (time-constrained or maximally parallel
      scheduling). *)

open Hls_cdfg

type t = Serial | Total of int | Classes of (Op.fu_class * int) list | Unlimited

val can_add : t -> counts:(Op.fu_class * int) list -> Op.fu_class -> bool
(** Whether one more operation of the class fits in a step currently
    running [counts] (per-class tallies of step-occupying operations
    already placed there). Free and non-executing classes always fit. *)

val within : t -> counts:(Op.fu_class * int) list -> bool
(** Whether a step's tallies respect the limits. *)

val to_string : t -> string

val serial : t
val two_fu : t
(** [Serial] and [Total 2] — the two configurations of the paper's Fig 2
    schedule-length comparison. *)
