(** Storage forwarding: a [Read v] that follows a [Write v] in the same
    block is replaced by the written value. Blocks produced directly by
    compilation never contain this pattern, but block merging
    ({!Merge_blocks}) and loop unrolling ({!Unroll}) do — forwarding is
    what turns the concatenated copies back into one long dependence
    chain through values instead of through registers. *)

val run : Hls_cdfg.Cfg.t -> bool
