open Hls_util
open Hls_cdfg

let fmt_of_ty (ty : Hls_lang.Ast.ty) =
  match ty with
  | Hls_lang.Ast.Tbool -> Fixedpt.format ~int_bits:1 ~frac_bits:0
  | Hls_lang.Ast.Tint w -> Fixedpt.format ~int_bits:w ~frac_bits:0
  | Hls_lang.Ast.Tfix (i, f) -> Fixedpt.format ~int_bits:i ~frac_bits:f

let frac_bits (ty : Hls_lang.Ast.ty) =
  match ty with Hls_lang.Ast.Tfix (_, f) -> f | Hls_lang.Ast.Tbool | Hls_lang.Ast.Tint _ -> 0

(* If [v] (a positive pattern) is exactly 2^m, return m. *)
let log2_exact v =
  if v <= 0 then None
  else begin
    let rec loop m p = if p = v then Some m else if p > v then None else loop (m + 1) (p * 2) in
    loop 0 1
  end

let const_of out nid = match Dfg.op out nid with Op.Const v -> Some v | _ -> None

(* Split a commutative argument pair into (non-const, const value). *)
let with_const out args =
  match args with
  | [ a; b ] -> (
      match (const_of out a, const_of out b) with
      | None, Some v -> Some (a, v)
      | Some v, None -> Some (b, v)
      | _ -> None)
  | _ -> None

(* Multiplying by constant 2^(m - frac) is a shift by |m - frac|.
   Exactness: fixed multiply computes floor((a*c)/2^frac); with c = 2^m
   that is floor(a * 2^(m-frac)), exactly what the arithmetic shift
   computes in either direction. *)
let shift_for_mul ty c =
  match log2_exact c with
  | None -> None
  | Some m ->
      let k = m - frac_bits ty in
      if k = 0 then None (* multiplication by one; constant folding's job *)
      else if k > 0 then Some (Op.Shl, k)
      else Some (Op.Shr, -k)

let make_rule ~allow_div_floor () : Rewrite.rule =
 fun ~out ~remap:_ _id node ~mapped_args ->
  let ty = node.Dfg.ty in
  let shift_amount_ty = Hls_lang.Ast.Tint 6 in
  let emit_shift x (op, k) =
    let amount = Dfg.add out (Op.Const k) [] shift_amount_ty in
    Rewrite.Subst (Dfg.add out op [ x; amount ] ty)
  in
  let one = Fixedpt.of_int (fmt_of_ty ty) 1 in
  match node.Dfg.op with
  | Op.Mul -> (
      match with_const out mapped_args with
      | Some (x, v) -> (
          match shift_for_mul ty v with
          | Some shift -> emit_shift x shift
          | None -> Rewrite.Copy)
      | None -> Rewrite.Copy)
  | Op.Div when allow_div_floor -> (
      match mapped_args with
      | [ x; c ] -> (
          match const_of out c with
          | Some v -> (
              match log2_exact v with
              | Some m ->
                  let k = m - frac_bits ty in
                  if k > 0 then emit_shift x (Op.Shr, k) else Rewrite.Copy
              | None -> Rewrite.Copy)
          | None -> Rewrite.Copy)
      | _ -> Rewrite.Copy)
  | Op.Add -> (
      match with_const out mapped_args with
      | Some (x, v) when v = one -> Rewrite.Subst (Dfg.add out Op.Incr [ x ] ty)
      | _ -> Rewrite.Copy)
  | Op.Sub -> (
      match mapped_args with
      | [ x; c ] -> (
          match const_of out c with
          | Some v when v = one -> Rewrite.Subst (Dfg.add out Op.Decr [ x ] ty)
          | _ -> Rewrite.Copy)
      | _ -> Rewrite.Copy)
  | Op.Cmp Op.Ceq -> (
      match with_const out mapped_args with
      | Some (x, 0) -> Rewrite.Subst (Dfg.add out Op.Zdetect [ x ] Hls_lang.Ast.Tbool)
      | _ -> Rewrite.Copy)
  | _ -> Rewrite.Copy

let run ?(allow_div_floor = false) cfg =
  Rewrite.rewrite_all cfg ~rule:(fun _bid -> make_rule ~allow_div_floor ())
