open Hls_cdfg

let succs_table cfg = Array.init (Cfg.n_blocks cfg) (fun bid -> Cfg.succs cfg bid)

(* Classification of the loop's exit structure; see the interface. *)
type shape =
  | Tail_exit  (** exit branch has continue-target = header *)
  | Header_exit of Cfg.bid  (** header branches out; payload = exit target *)

let classify cfg ~header ~members =
  let in_loop b = List.mem b members in
  let exit_branches =
    List.filter_map
      (fun m ->
        match Cfg.term cfg m with
        | Cfg.Branch (_, x, y) when in_loop x <> in_loop y ->
            let inside = if in_loop x then x else y in
            let outside = if in_loop x then y else x in
            Some (m, inside, outside)
        | _ -> None)
      members
  in
  match exit_branches with
  | [ (_, inside, _) ] when inside = header -> Some Tail_exit
  | [ (m, _, outside) ] when m = header ->
      if Dfg.writes (Cfg.dfg cfg header) = [] then Some (Header_exit outside) else None
  | _ -> None

type slot = Orig of Cfg.bid | Copy of int * Cfg.bid

let unroll cfg ~header =
  match Cfg.trip_count cfg header with
  | None -> None
  | Some trips -> (
      let succs = succs_table cfg in
      let loop_list = Graph_algo.loops ~succs ~entry:(Cfg.entry cfg) in
      match List.assoc_opt header loop_list with
      | None -> None
      | Some members -> (
          match classify cfg ~header ~members with
          | None -> None
          | Some shape ->
              let in_loop b = List.mem b members in
              (* layout: originals in order; at the header position, all
                 copies of all members, iteration-major *)
              let slots =
                List.concat_map
                  (fun bid ->
                    if bid = header then
                      List.concat_map
                        (fun i -> List.map (fun m -> Copy (i, m)) members)
                        (List.init trips (fun i -> i + 1))
                    else if in_loop bid then []
                    else [ Orig bid ])
                  (Cfg.block_ids cfg)
              in
              let out = Cfg.create () in
              let orig_map = Hashtbl.create 16 in
              let copy_map = Hashtbl.create 16 in
              List.iter
                (fun slot ->
                  match slot with
                  | Orig bid ->
                      let b = Cfg.block cfg bid in
                      let nb =
                        Cfg.add_block out ~label:b.Cfg.label
                          (Clean_cfg.copy_dfg b.Cfg.dfg) b.Cfg.term
                      in
                      Hashtbl.replace orig_map bid nb
                  | Copy (i, m) ->
                      let b = Cfg.block cfg m in
                      let nb =
                        Cfg.add_block out
                          ~label:(Printf.sprintf "%s_u%d" b.Cfg.label i)
                          (Clean_cfg.copy_dfg b.Cfg.dfg) b.Cfg.term
                      in
                      Hashtbl.replace copy_map (i, m) nb)
                slots;
              let map_orig bid = Hashtbl.find orig_map bid in
              let map_copy i m = Hashtbl.find copy_map (i, m) in
              (* target mapping for a non-loop block: the loop is entered
                 through the header's first copy *)
              let map_outside_target t =
                if t = header then map_copy 1 header
                else if in_loop t then invalid_arg "Unroll: side entry into loop"
                else map_orig t
              in
              (* target mapping inside copy i *)
              let map_inside_target ~i t =
                if t = header then begin
                  if i < trips then map_copy (i + 1) header
                  else
                    match shape with
                    | Header_exit exit_target -> map_orig exit_target
                    | Tail_exit ->
                        (* tail-exit loops resolve the branch itself; a
                           bare backedge Goto header at i = trips cannot
                           occur *)
                        invalid_arg "Unroll: unresolved final back edge"
                end
                else if in_loop t then map_copy i t
                else map_orig t
              in
              (* fix terms for original blocks *)
              Hashtbl.iter
                (fun bid nb ->
                  let term =
                    match Cfg.term cfg bid with
                    | Cfg.Goto t -> Cfg.Goto (map_outside_target t)
                    | Cfg.Branch (c, x, y) ->
                        Cfg.Branch (c, map_outside_target x, map_outside_target y)
                    | Cfg.Halt -> Cfg.Halt
                  in
                  Cfg.set_term out nb term)
                orig_map;
              (* fix terms for copies *)
              Hashtbl.iter
                (fun (i, m) nb ->
                  let term =
                    match Cfg.term cfg m with
                    | Cfg.Goto t -> Cfg.Goto (map_inside_target ~i t)
                    | Cfg.Branch (c, x, y) ->
                        let x_in = in_loop x and y_in = in_loop y in
                        if x_in <> y_in then begin
                          (* loop-control branch: resolve statically *)
                          let inside = if x_in then x else y in
                          let outside = if x_in then y else x in
                          match shape with
                          | Tail_exit ->
                              if i < trips then Cfg.Goto (map_copy (i + 1) header)
                              else Cfg.Goto (map_orig outside)
                          | Header_exit _ ->
                              (* header-style test always continues inside
                                 within the body copies *)
                              Cfg.Goto (map_inside_target ~i inside)
                        end
                        else
                          Cfg.Branch
                            (c, map_inside_target ~i x, map_inside_target ~i y)
                    | Cfg.Halt -> Cfg.Halt
                  in
                  Cfg.set_term out nb term)
                copy_map;
              (* entry and trip counts *)
              Cfg.set_entry out
                (if in_loop (Cfg.entry cfg) then map_copy 1 (Cfg.entry cfg)
                 else map_orig (Cfg.entry cfg));
              List.iter
                (fun bid ->
                  match Cfg.trip_count cfg bid with
                  | None -> ()
                  | Some t ->
                      if bid = header then () (* the unrolled loop is gone *)
                      else if in_loop bid then
                        List.iter
                          (fun i -> Cfg.set_trip_count out (map_copy i bid) t)
                          (List.init trips (fun i -> i + 1))
                      else Cfg.set_trip_count out (map_orig bid) t)
                (Cfg.block_ids cfg);
              Cfg.validate out;
              Some out))

let unroll_all ?(max_trip = 64) cfg =
  let changed = ref false in
  let rec go cfg fuel =
    if fuel = 0 then cfg
    else begin
      let succs = succs_table cfg in
      let loop_list = Graph_algo.loops ~succs ~entry:(Cfg.entry cfg) in
      let candidate =
        List.find_map
          (fun (h, _members) ->
            match Cfg.trip_count cfg h with
            | Some t when t <= max_trip -> (
                match unroll cfg ~header:h with Some out -> Some out | None -> None)
            | _ -> None)
          loop_list
      in
      match candidate with
      | Some out ->
          changed := true;
          go out (fuel - 1)
      | None -> cfg
    end
  in
  let result = go cfg 64 in
  (result, !changed)
