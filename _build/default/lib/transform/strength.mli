(** Hardware-specific strength reduction (the paper's "local
    transformations, including those that are more specific to hardware"):

    - multiplication by a power-of-two constant becomes a constant shift
      (free wiring) — this covers the sqrt example's [0.5 * x → x >> 1];
      the rewrite is bit-exact for fixed-point, both operations floor;
    - [x + 1 → incr x] and [x - 1 → decr x];
    - [x = 0 → zdetect x] (free zero-detect on a register output);
    - optionally, division by a power of two becomes an arithmetic right
      shift. This changes rounding for negative dividends (shift floors,
      division truncates toward zero), so it is off by default. *)

val run : ?allow_div_floor:bool -> Hls_cdfg.Cfg.t -> bool
