open Hls_cdfg

(* The rule adds surviving nodes itself (returning [Subst]) so it can
   record the id each structural key received in the new graph. *)
let make_rule () : Rewrite.rule =
  let table : (string, Dfg.nid) Hashtbl.t = Hashtbl.create 16 in
  fun ~out ~remap:_ _id node ~mapped_args ->
    match node.Dfg.op with
    | Op.Write _ -> Rewrite.Copy
    | op -> (
        let key =
          Printf.sprintf "%s(%s):%s" (Op.to_string op)
            (String.concat "," (List.map string_of_int mapped_args))
            (Hls_lang.Ast.ty_to_string node.Dfg.ty)
        in
        match Hashtbl.find_opt table key with
        | Some nid -> Rewrite.Subst nid
        | None ->
            let nid = Dfg.add out op mapped_args node.Dfg.ty in
            Hashtbl.add table key nid;
            Rewrite.Subst nid)

let run cfg = Rewrite.rewrite_all cfg ~rule:(fun _bid -> make_rule ())
