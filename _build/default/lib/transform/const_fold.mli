(** Constant folding, constant propagation and algebraic simplification.

    Within each block: operations whose inputs are all constants are
    evaluated at compile time (bit-exactly, via {!Hls_cdfg.Op.eval});
    algebraic identities ([x+0], [x*1], [x*0], [x-x], [x xor x], double
    negation, constant-condition muxes, shift by zero) are simplified; and
    identical constants are merged. A branch whose condition folds to a
    constant becomes an unconditional jump, exposing unreachable blocks to
    {!Clean_cfg}. *)

val run : Hls_cdfg.Cfg.t -> bool
(** Returns true if anything changed. *)
