open Hls_cdfg

type t = {
  name : string;
  descr : string;
  run : outputs:string list -> Cfg.t -> Cfg.t * bool;
}

let in_place f ~outputs cfg =
  ignore outputs;
  let changed = f cfg in
  (cfg, changed)

let const_fold = { name = "const-fold"; descr = "constant folding and algebraic identities"; run = in_place Const_fold.run }

let cse = { name = "cse"; descr = "common subexpression elimination"; run = in_place Cse.run }

let forward = { name = "forward"; descr = "storage forwarding within blocks"; run = in_place Forward.run }

let strength =
  { name = "strength"; descr = "strength reduction (mul-by-2^k to shift, +-1 to incr/decr, =0 to zero-detect)";
    run = in_place (fun cfg -> Strength.run cfg) }

let dce =
  { name = "dce"; descr = "dead code and dead write elimination";
    run = (fun ~outputs cfg -> (cfg, Dead_code.run ~outputs cfg)) }

let tree_height = { name = "tree-height"; descr = "tree height reduction of associative chains"; run = in_place Tree_height.run }

let loop_recode =
  { name = "loop-recode"; descr = "counter recoding to wraparound width and free zero-detect exit";
    run = (fun ~outputs cfg -> (cfg, Loop_recode.run ~protected:outputs cfg)) }

let unroll =
  { name = "unroll"; descr = "unrolling of counted loops";
    run = (fun ~outputs:_ cfg -> Unroll.unroll_all cfg) }

let merge =
  { name = "merge-blocks"; descr = "straight-line block merging and unreachable-block pruning";
    run = (fun ~outputs:_ cfg -> Clean_cfg.merge cfg) }

let prune =
  { name = "prune"; descr = "unreachable-block pruning";
    run = (fun ~outputs:_ cfg -> Clean_cfg.prune cfg) }

let if_convert =
  { name = "if-convert"; descr = "speculative mux conversion of small branch diamonds";
    run = (fun ~outputs:_ cfg -> If_convert.run cfg) }

let all =
  [ const_fold; cse; forward; strength; dce; tree_height; loop_recode; unroll; merge;
    prune; if_convert ]

let find name = List.find (fun p -> p.name = name) all

let run_pipeline ~outputs passes cfg =
  let max_rounds = 16 in
  let rec go cfg round =
    if round >= max_rounds then cfg
    else begin
      let cfg, changed =
        List.fold_left
          (fun (cfg, changed) pass ->
            let cfg, c = pass.run ~outputs cfg in
            (cfg, changed || c))
          (cfg, false) passes
      in
      if changed then go cfg (round + 1) else cfg
    end
  in
  go cfg 0

let standard = [ forward; const_fold; cse; strength; dce ]

let aggressive = standard @ [ loop_recode; unroll; merge; tree_height; prune ]

let optimize ?(level = `Standard) ~outputs cfg =
  match level with
  | `None -> cfg
  | `Standard -> run_pipeline ~outputs standard cfg
  | `Aggressive -> run_pipeline ~outputs aggressive cfg
