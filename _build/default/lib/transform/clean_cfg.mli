(** Control-flow-graph cleanup.

    [prune] drops blocks unreachable from the entry (e.g. branches folded
    to constants, loop bodies replaced by unrolled copies) and renumbers
    the rest. [merge] fuses straight-line [Goto] chains — a block whose
    only successor has no other predecessor — so that unrolled loop
    iterations become one long basic block that schedulers can pack
    ("the control graph can be packed into control steps as tightly as
    possible"). *)

val prune : Hls_cdfg.Cfg.t -> Hls_cdfg.Cfg.t * bool
(** Remove unreachable blocks. The boolean reports whether anything was
    removed. Entry, terminators and trip counts are renumbered. *)

val merge : Hls_cdfg.Cfg.t -> Hls_cdfg.Cfg.t * bool
(** Merge single-pred/single-succ [Goto] chains, then prune. Reads in a
    merged-in block are forwarded from the preceding writes. *)

val copy_dfg : Hls_cdfg.Dfg.t -> Hls_cdfg.Dfg.t
(** Structural copy (identical ids). *)
