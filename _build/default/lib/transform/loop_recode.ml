open Hls_cdfg

let log2_exact v =
  if v <= 0 then None
  else begin
    let rec loop m p = if p = v then Some m else if p > v then None else loop (m + 1) (p * 2) in
    loop 0 1
  end

let succs_table cfg = Array.init (Cfg.n_blocks cfg) (fun bid -> Cfg.succs cfg bid)

(* In block [m], match: cond = Cmp(_, inc, const) / Cmp(_, const, inc),
   inc = Incr(Read v) or Add(Read v, Const 1), Write v of inc. *)
let match_counter g cond_id =
  let const_arg nid = match Dfg.op g nid with Op.Const v -> Some v | _ -> None in
  let inc_candidate =
    match Dfg.node g cond_id with
    | { Dfg.op = Op.Cmp _; args = [ a; b ]; _ } -> (
        match (const_arg a, const_arg b) with
        | None, Some _ -> Some a
        | Some _, None -> Some b
        | _ -> None)
    | _ -> None
  in
  match inc_candidate with
  | None -> None
  | Some inc_id -> (
      let read_of nid =
        match Dfg.node g nid with
        | { Dfg.op = Op.Read v; _ } -> Some (v, nid)
        | _ -> None
      in
      let read_info =
        match Dfg.node g inc_id with
        | { Dfg.op = Op.Incr; args = [ r ]; _ } -> read_of r
        | { Dfg.op = Op.Add; args = [ r; c ]; _ } when const_arg c = Some 1 -> read_of r
        | { Dfg.op = Op.Add; args = [ c; r ]; _ } when const_arg c = Some 1 -> read_of r
        | _ -> None
      in
      match read_info with
      | None -> None
      | Some (v, read_id) -> (
          let write =
            List.find_opt
              (fun (wv, wnid) -> wv = v && Dfg.args g wnid = [ inc_id ])
              (Dfg.writes g)
          in
          match write with
          | Some (_, write_id) -> Some (v, read_id, inc_id, write_id)
          | None -> None))

(* Find the single initialization write of [v] outside the loop; it must
   write constant 0, and [v] must be untouched everywhere else. *)
let find_init cfg ~members v ~tail =
  let candidates =
    List.concat_map
      (fun bid ->
        let g = Cfg.dfg cfg bid in
        let reads = List.filter (fun (rv, _) -> rv = v) (Dfg.reads g) in
        let writes = List.filter (fun (wv, _) -> wv = v) (Dfg.writes g) in
        if bid = tail then []
        else if List.mem bid members then
          if reads = [] && writes = [] then [] else [ `Disqualify ]
        else if reads <> [] then [ `Disqualify ]
        else
          List.map
            (fun (_, wnid) ->
              match Dfg.args g wnid with
              | [ arg ] -> (
                  match Dfg.op g arg with
                  | Op.Const 0 -> `Init (bid, wnid)
                  | _ -> `Disqualify)
              | _ -> `Disqualify)
            writes)
      (Cfg.block_ids cfg)
  in
  match candidates with [ `Init info ] -> Some info | _ -> None

let recode_one cfg ~header ~members ~trips ~protected =
  match log2_exact trips with
  | None | Some 0 -> false
  | Some bits -> (
      let in_loop b = List.mem b members in
      let tail_info =
        List.find_map
          (fun m ->
            match Cfg.term cfg m with
            | Cfg.Branch (cond, x, y) when in_loop x <> in_loop y ->
                let inside = if in_loop x then x else y in
                let outside = if in_loop x then y else x in
                if inside = header then Some (m, cond, outside) else None
            | _ -> None)
          members
      in
      match tail_info with
      | None -> false
      | Some (tail, cond_id, exit_target) -> (
          let g = Cfg.dfg cfg tail in
          match match_counter g cond_id with
          | Some (v, read_id, inc_id, write_id) when not (List.mem v protected) -> (
              let users = Dfg.users g in
              let extra_read_users = List.filter (fun u -> u <> inc_id) users.(read_id) in
              let extra_inc_users =
                List.filter (fun u -> u <> write_id && u <> cond_id) users.(inc_id)
              in
              if extra_read_users <> [] || extra_inc_users <> [] then false
              else
                match find_init cfg ~members v ~tail with
                | None -> false
                | Some (init_bid, init_write) ->
                    let narrow = Hls_lang.Ast.Tint bits in
                    let rule : Rewrite.rule =
                     fun ~out ~remap id _node ~mapped_args:_ ->
                      if id = read_id then
                        Rewrite.Subst (Dfg.add out (Op.Read v) [] narrow)
                      else if id = inc_id then
                        Rewrite.Subst (Dfg.add out Op.Incr [ remap.(read_id) ] narrow)
                      else if id = write_id then
                        Rewrite.Subst
                          (Dfg.add out (Op.Write v) [ remap.(inc_id) ] narrow)
                      else if id = cond_id then
                        Rewrite.Subst
                          (Dfg.add out Op.Zdetect [ remap.(inc_id) ] Hls_lang.Ast.Tbool)
                      else Rewrite.Copy
                    in
                    ignore (Rewrite.rewrite_block cfg tail ~rule);
                    (* zero-detect fires on loop exit: exit-on-true *)
                    (match Cfg.term cfg tail with
                    | Cfg.Branch (c, _, _) ->
                        Cfg.set_term cfg tail (Cfg.Branch (c, exit_target, header))
                    | Cfg.Goto _ | Cfg.Halt -> ());
                    let init_rule : Rewrite.rule =
                     fun ~out ~remap:_ id _node ~mapped_args:_ ->
                      if id = init_write then begin
                        let zero = Dfg.add out (Op.Const 0) [] narrow in
                        Rewrite.Subst (Dfg.add out (Op.Write v) [ zero ] narrow)
                      end
                      else Rewrite.Copy
                    in
                    ignore (Rewrite.rewrite_block cfg init_bid ~rule:init_rule);
                    true)
          | Some _ | None -> false))

let run ?(protected = []) cfg =
  let succs = succs_table cfg in
  let loop_list = Graph_algo.loops ~succs ~entry:(Cfg.entry cfg) in
  List.fold_left
    (fun acc (header, members) ->
      match Cfg.trip_count cfg header with
      | Some trips -> recode_one cfg ~header ~members ~trips ~protected || acc
      | None -> acc)
    false loop_list
