(** Loop-counter recoding — the paper's example transformation: "the
    loop-ending criterion can be changed to I = 0 using a two-bit variable
    for I".

    For a tail-exit loop with trip count [T = 2^b] whose counter [i]
    starts at 0, is incremented once per iteration, and is used only as
    the loop counter: the counter is narrowed to [b] bits (so it wraps to
    0 exactly after [T] increments) and the exit comparison is replaced by
    a free zero-detect on the incremented value. The comparison operation
    disappears from the schedule. *)

val run : ?protected:string list -> Hls_cdfg.Cfg.t -> bool
(** Apply to every eligible loop; true if any was recoded. [protected]
    variables (output ports, whose value is observable) are never
    recoded. *)
