open Hls_cdfg

type decision = Copy | Subst of Dfg.nid | Drop

type rule = out:Dfg.t -> remap:int array -> Dfg.nid -> Dfg.node -> mapped_args:Dfg.nid list -> decision

let rewrite_dfg g ~rule =
  let n = Dfg.n_nodes g in
  let out = Dfg.create () in
  let remap = Array.make n (-1) in
  Dfg.iter
    (fun id node ->
      (* arguments are remapped permissively (-1 for dropped); a rule that
         keeps a node whose argument was dropped fails at [Dfg.add] below *)
      let mapped_args = List.map (fun a -> remap.(a)) node.Dfg.args in
      match rule ~out ~remap id node ~mapped_args with
      | Copy ->
          if List.mem (-1) mapped_args then
            invalid_arg
              (Printf.sprintf "Rewrite: node %%%d uses a dropped node" id);
          remap.(id) <- Dfg.add out node.Dfg.op mapped_args node.Dfg.ty
      | Subst nid -> remap.(id) <- nid
      | Drop -> remap.(id) <- -1)
    g;
  (out, remap)

let structurally_equal a b =
  Dfg.n_nodes a = Dfg.n_nodes b
  && List.for_all
       (fun id ->
         let na = Dfg.node a id and nb = Dfg.node b id in
         Op.equal na.Dfg.op nb.Dfg.op && na.Dfg.args = nb.Dfg.args && na.Dfg.ty = nb.Dfg.ty)
       (Dfg.node_ids a)

let rewrite_block cfg bid ~rule =
  let old_dfg = Cfg.dfg cfg bid in
  let new_dfg, remap = rewrite_dfg old_dfg ~rule in
  let new_term =
    match Cfg.term cfg bid with
    | Cfg.Branch (cond, bt, bf) ->
        let m = remap.(cond) in
        if m = -1 then invalid_arg "Rewrite: branch condition was dropped";
        Cfg.Branch (m, bt, bf)
    | (Cfg.Goto _ | Cfg.Halt) as t -> t
  in
  let changed =
    (not (structurally_equal old_dfg new_dfg)) || new_term <> Cfg.term cfg bid
  in
  if changed then Cfg.replace_dfg cfg bid new_dfg new_term;
  changed

let rewrite_all cfg ~rule =
  List.fold_left
    (fun acc bid -> rewrite_block cfg bid ~rule:(rule bid) || acc)
    false (Cfg.block_ids cfg)
