(** Common subexpression elimination (within a block).

    Two nodes with the same operator, argument values and type compute the
    same value; the later one is replaced by the earlier. [Read]s of the
    same variable unify (the compiler already guarantees this for a single
    block, but block merging can reintroduce duplicates); [Write]s never
    unify. *)

val run : Hls_cdfg.Cfg.t -> bool
