(** Pass manager: named optimization passes and standard pipelines.

    The [`Standard] level applies the paper's compiler-like optimizations
    (constant folding/propagation, CSE, dead-code elimination, storage
    forwarding, strength reduction, zero-detect rewriting) to a fixpoint.
    [`Aggressive] additionally recodes loop counters, unrolls counted
    loops and merges the resulting straight-line blocks — the full
    sequence the paper walks through on the sqrt example. *)

open Hls_cdfg

type t = {
  name : string;
  descr : string;
  run : outputs:string list -> Cfg.t -> Cfg.t * bool;
}

val all : t list
(** Every registered pass. *)

val find : string -> t
(** Look up by name. Raises [Not_found]. *)

val run_pipeline : outputs:string list -> t list -> Cfg.t -> Cfg.t
(** Apply the pass list repeatedly until a fixpoint (bounded). *)

val standard : t list
val aggressive : t list

val optimize :
  ?level:[ `None | `Standard | `Aggressive ] -> outputs:string list -> Cfg.t -> Cfg.t
(** Run a pipeline level (default [`Standard]). *)
