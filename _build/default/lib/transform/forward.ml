open Hls_cdfg

let make_rule () : Rewrite.rule =
  let written : (string, Dfg.nid) Hashtbl.t = Hashtbl.create 8 in
  fun ~out:_ ~remap:_ _id node ~mapped_args ->
    match (node.Dfg.op, mapped_args) with
    | Op.Write v, [ value ] ->
        Hashtbl.replace written v value;
        Rewrite.Copy
    | Op.Read v, [] -> (
        match Hashtbl.find_opt written v with
        | Some value -> Rewrite.Subst value
        | None -> Rewrite.Copy)
    | _ -> Rewrite.Copy

let run cfg = Rewrite.rewrite_all cfg ~rule:(fun _bid -> make_rule ())
