(** Loop unrolling for loops with a recorded trip count ("loop unrolling
    can also be done in this case since the number of iterations is fixed
    and small").

    The loop body is replicated trip-count times; loop-control branches
    are resolved statically to jumps; data flows between iterations
    through the existing [Write]/[Read] variable anchors (storage
    forwarding and block merging then turn the copies into one long
    block). Two loop shapes are supported, matching what the frontend
    generates:

    - tail-exit ("repeat"): the exit branch sits in the block holding the
      back edge and its continue-target is the header;
    - header-exit ("while"): the header tests the condition and contains
      no writes, so the final back edge can jump straight to the exit.

    Loops containing data-dependent conditionals are still unrollable —
    only loop-control branches are resolved. Nested counted loops inside
    the body are replicated with their trip counts intact. *)

val unroll : Hls_cdfg.Cfg.t -> header:Hls_cdfg.Cfg.bid -> Hls_cdfg.Cfg.t option
(** Unroll one loop. [None] if the block is not the header of a loop with
    a known trip count or the loop shape is unsupported. *)

val unroll_all : ?max_trip:int -> Hls_cdfg.Cfg.t -> Hls_cdfg.Cfg.t * bool
(** Repeatedly unroll every counted loop with trip count at most
    [max_trip] (default 64), until none remains. *)
