(** Generic block-rewriting machinery shared by the optimization passes.

    Because DFG node ids must stay topological, passes rebuild blocks
    rather than mutate them: nodes are visited in id order and each is
    either copied, substituted by an existing node of the new graph, or
    dropped. Argument references and the block terminator's condition are
    remapped automatically. *)

open Hls_cdfg

(** Decision for one old node. [Subst id] must reference a node already
    present in the {e new} graph. [Drop] is only legal for nodes whose
    value ends up unused (the rewrite fails loudly otherwise). *)
type decision = Copy | Subst of Dfg.nid | Drop

(** Rule invoked per node, in ascending id order. Receives the new graph
    under construction, the remap table (old id → new id, [-1] for
    dropped), and the old node with remapped arguments precomputed
    ([mapped_args] contains [-1] where an argument was dropped — legal
    only if this node is itself dropped). The rule may add nodes to the
    new graph itself and return [Subst]. *)
type rule = out:Dfg.t -> remap:int array -> Dfg.nid -> Dfg.node -> mapped_args:Dfg.nid list -> decision

val rewrite_dfg : Dfg.t -> rule:rule -> Dfg.t * int array
(** Rebuild a single DFG. Returns the new graph and the remap table.
    Raises [Invalid_argument] if a kept node references a dropped one. *)

val rewrite_block : Cfg.t -> Cfg.bid -> rule:rule -> bool
(** Rewrite one block in place (via {!Cfg.replace_dfg}), remapping the
    branch condition. Returns whether the block changed structurally
    (any node dropped, substituted, rewritten, or added). Raises
    [Invalid_argument] if the branch condition was dropped. *)

val rewrite_all : Cfg.t -> rule:(Cfg.bid -> rule) -> bool
(** Apply a (block-indexed) rule to every block; true if any changed. *)
