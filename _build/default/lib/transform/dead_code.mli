(** Dead-code elimination.

    Roots are the block's branch condition, writes to variables live at
    block exit (per {!Hls_cdfg.Liveness}), and — for each variable — only
    the {e last} write in the block (earlier writes are unobservable).
    Everything not reachable backwards from a root is removed. This is the
    pass that realizes the paper's "ability to reassign variables": dead
    intermediate writes disappear, leaving pure value arcs. *)

val run : outputs:string list -> Hls_cdfg.Cfg.t -> bool
(** [outputs] are the variables (output ports) live after [Halt]. *)
