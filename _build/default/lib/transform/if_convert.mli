(** If-conversion: turn small branch diamonds into straight-line code
    with value-steering muxes, so the scheduler sees one bigger block
    (the mux itself is free interconnect, not a functional unit).

    A diamond is convertible when both arms are single blocks that fall
    through to the same join, and speculation is safe: neither arm may
    contain an operation that can trap (division/modulo). Both arms'
    computations then execute unconditionally; each variable written by
    either arm receives [mux(cond, then-value, else-value)].

    This trades operations for control steps — the "trading off
    complexity between the control and the data paths" the paper lists
    among the open system-level issues. *)

val run : ?max_arm_ops:int -> Hls_cdfg.Cfg.t -> Hls_cdfg.Cfg.t * bool
(** Convert every eligible diamond with at most [max_arm_ops]
    step-occupying operations per arm (default 8). Returns the pruned
    CFG. *)
