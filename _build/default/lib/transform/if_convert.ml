open Hls_cdfg

let succs_table cfg = Array.init (Cfg.n_blocks cfg) (fun bid -> Cfg.succs cfg bid)

let arm_safe g max_arm_ops =
  let ops = Dfg.compute_ops g in
  List.length ops <= max_arm_ops
  && Dfg.fold
       (fun acc _ n ->
         acc && match n.Dfg.op with Op.Div | Op.Mod -> false | _ -> true)
       true g

(* A convertible diamond rooted at [c]: returns (then-block option,
   else-block option, join). [None] for an arm means the branch edge goes
   straight to the join. *)
let match_diamond cfg preds c =
  match Cfg.term cfg c with
  | Cfg.Branch (_, bt, bf) when bt <> bf ->
      let arm b join_candidate =
        (* an arm is a single block with only [c] as predecessor, falling
           through to the join *)
        if b = join_candidate then Some None
        else if preds.(b) = [ c ] then
          match Cfg.term cfg b with
          | Cfg.Goto j when j = join_candidate -> Some (Some b)
          | _ -> None
        else None
      in
      let join_of b = match Cfg.term cfg b with Cfg.Goto j -> Some j | _ -> None in
      (* candidate joins: successor of whichever side is a real arm *)
      let candidates =
        List.filter_map Fun.id
          [ join_of bt; join_of bf; Some bf; Some bt ]
        |> List.sort_uniq compare
      in
      List.find_map
        (fun j ->
          if j = c then None
          else
            match (arm bt j, arm bf j) with
            | Some t, Some f when (t <> None || f <> None) -> Some (t, f, j)
            | _ -> None)
        candidates
  | _ -> None

(* value of variable [v] at the end of the (copied) conditional block:
   its last write's argument, or a (possibly fresh) read *)
let value_at_end out env_reads v ty =
  let last_write =
    List.fold_left
      (fun acc (wv, wnid) -> if wv = v then Some wnid else acc)
      None (Dfg.writes out)
  in
  match last_write with
  | Some wnid -> (
      match Dfg.args out wnid with [ a ] -> a | _ -> invalid_arg "If_convert: bad write")
  | None -> (
      match Hashtbl.find_opt env_reads v with
      | Some nid -> nid
      | None ->
          let nid = Dfg.add out (Op.Read v) [] ty in
          Hashtbl.add env_reads v nid;
          nid)

(* inline one arm into [out]; returns the variable writes it performs *)
let inline_arm out env_reads arm_g =
  let n = Dfg.n_nodes arm_g in
  let remap = Array.make n (-1) in
  let writes = ref [] in
  Dfg.iter
    (fun id node ->
      let mapped = List.map (fun a -> remap.(a)) node.Dfg.args in
      match node.Dfg.op with
      | Op.Read v -> remap.(id) <- value_at_end out env_reads v node.Dfg.ty
      | Op.Write v ->
          (match mapped with
          | [ a ] -> writes := (v, a, node.Dfg.ty) :: !writes
          | _ -> invalid_arg "If_convert: bad write");
          remap.(id) <- -1
      | op -> remap.(id) <- Dfg.add out op mapped node.Dfg.ty)
    arm_g;
  List.rev !writes

let convert_one cfg ~max_arm_ops =
  let preds = Hls_cdfg.Graph_algo.preds (succs_table cfg) in
  let candidate =
    List.find_map
      (fun c ->
        match match_diamond cfg preds c with
        | Some (t, f, j) ->
            let ok arm =
              match arm with
              | None -> true
              | Some b -> arm_safe (Cfg.dfg cfg b) max_arm_ops
            in
            if ok t && ok f then Some (c, t, f, j) else None
        | None -> None)
      (Cfg.block_ids cfg)
  in
  match candidate with
  | None -> false
  | Some (c, t, f, j) ->
      let cond =
        match Cfg.term cfg c with
        | Cfg.Branch (cond, _, _) -> cond
        | _ -> invalid_arg "If_convert: lost branch"
      in
      let out = Clean_cfg.copy_dfg (Cfg.dfg cfg c) in
      (* reads already present in the conditional block *)
      let env_reads = Hashtbl.create 8 in
      List.iter (fun (v, nid) -> Hashtbl.replace env_reads v nid) (Dfg.reads out);
      (* fall-through values before either arm runs *)
      let base_value v ty = value_at_end out env_reads v ty in
      let then_writes =
        match t with None -> [] | Some b -> inline_arm out env_reads (Cfg.dfg cfg b)
      in
      let else_writes =
        match f with None -> [] | Some b -> inline_arm out env_reads (Cfg.dfg cfg b)
      in
      (* IMPORTANT: arms were inlined sequentially, so the else arm must
         not observe then-arm writes. It cannot: then-arm writes were not
         materialized as Write nodes, and [value_at_end] only sees writes
         present in [out] — the conditional block's own. *)
      let vars =
        List.sort_uniq compare
          (List.map (fun (v, _, _) -> v) then_writes
          @ List.map (fun (v, _, _) -> v) else_writes)
      in
      List.iter
        (fun v ->
          let ty =
            match
              List.find_opt (fun (v', _, _) -> v' = v) (then_writes @ else_writes)
            with
            | Some (_, _, ty) -> ty
            | None -> invalid_arg "If_convert: variable without type"
          in
          let tv =
            match List.find_opt (fun (v', _, _) -> v' = v) then_writes with
            | Some (_, a, _) -> a
            | None -> base_value v ty
          in
          let fv =
            match List.find_opt (fun (v', _, _) -> v' = v) else_writes with
            | Some (_, a, _) -> a
            | None -> base_value v ty
          in
          let value = if tv = fv then tv else Dfg.add out Op.Mux [ cond; tv; fv ] ty in
          ignore (Dfg.add out (Op.Write v) [ value ] ty))
        vars;
      Cfg.replace_dfg cfg c out (Cfg.Goto j);
      true

let run ?(max_arm_ops = 8) cfg =
  let changed = ref false in
  let fuel = ref (Cfg.n_blocks cfg + 4) in
  while convert_one cfg ~max_arm_ops && !fuel > 0 do
    changed := true;
    decr fuel
  done;
  if !changed then begin
    let out, _ = Clean_cfg.prune cfg in
    (out, true)
  end
  else (cfg, false)
