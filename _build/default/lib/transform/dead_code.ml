open Hls_cdfg

let run ~outputs cfg =
  let live = Liveness.analyze ~live_at_exit:outputs cfg in
  let changed = ref false in
  List.iter
    (fun bid ->
      let g = Cfg.dfg cfg bid in
      let n = Dfg.n_nodes g in
      let live_out = Liveness.live_out live bid in
      (* last write per variable *)
      let last_write = Hashtbl.create 8 in
      List.iter (fun (v, nid) -> Hashtbl.replace last_write v nid) (Dfg.writes g);
      let keep = Array.make n false in
      let rec mark nid =
        if not keep.(nid) then begin
          keep.(nid) <- true;
          List.iter mark (Dfg.args g nid)
        end
      in
      (match Cfg.term cfg bid with
      | Cfg.Branch (cond, _, _) -> mark cond
      | Cfg.Goto _ | Cfg.Halt -> ());
      Hashtbl.iter
        (fun v nid -> if List.mem v live_out then mark nid)
        last_write;
      let rule : Rewrite.rule =
       fun ~out:_ ~remap:_ id _node ~mapped_args:_ ->
        if keep.(id) then Rewrite.Copy else Rewrite.Drop
      in
      if Rewrite.rewrite_block cfg bid ~rule then changed := true)
    (Cfg.block_ids cfg);
  !changed
