lib/transform/strength.ml: Dfg Fixedpt Hls_cdfg Hls_lang Hls_util Op Rewrite
