lib/transform/if_convert.mli: Hls_cdfg
