lib/transform/loop_recode.ml: Array Cfg Dfg Graph_algo Hls_cdfg Hls_lang List Op Rewrite
