lib/transform/forward.ml: Dfg Hashtbl Hls_cdfg Op Rewrite
