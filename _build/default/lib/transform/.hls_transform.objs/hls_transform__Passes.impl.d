lib/transform/passes.ml: Cfg Clean_cfg Const_fold Cse Dead_code Forward Hls_cdfg If_convert List Loop_recode Strength Tree_height Unroll
