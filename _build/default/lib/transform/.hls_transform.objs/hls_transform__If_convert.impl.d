lib/transform/if_convert.ml: Array Cfg Clean_cfg Dfg Fun Hashtbl Hls_cdfg List Op
