lib/transform/dead_code.mli: Hls_cdfg
