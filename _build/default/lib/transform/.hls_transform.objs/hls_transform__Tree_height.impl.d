lib/transform/tree_height.ml: Array Cfg Dfg Hls_cdfg Hls_lang List Op Rewrite
