lib/transform/dead_code.ml: Array Cfg Dfg Hashtbl Hls_cdfg List Liveness Rewrite
