lib/transform/loop_recode.mli: Hls_cdfg
