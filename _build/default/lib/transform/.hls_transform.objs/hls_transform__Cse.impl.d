lib/transform/cse.ml: Dfg Hashtbl Hls_cdfg Hls_lang List Op Printf Rewrite String
