lib/transform/rewrite.ml: Array Cfg Dfg Hls_cdfg List Op Printf
