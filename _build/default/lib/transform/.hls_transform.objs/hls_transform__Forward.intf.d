lib/transform/forward.mli: Hls_cdfg
