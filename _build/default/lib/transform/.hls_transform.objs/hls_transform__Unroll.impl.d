lib/transform/unroll.ml: Array Cfg Clean_cfg Dfg Graph_algo Hashtbl Hls_cdfg List Printf
