lib/transform/cse.mli: Hls_cdfg
