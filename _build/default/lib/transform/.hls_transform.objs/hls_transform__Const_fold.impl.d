lib/transform/const_fold.ml: Cfg Dfg Fixedpt Hashtbl Hls_cdfg Hls_lang Hls_util List Op Printf Rewrite
