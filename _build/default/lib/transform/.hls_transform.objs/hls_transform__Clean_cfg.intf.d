lib/transform/clean_cfg.mli: Hls_cdfg
