lib/transform/const_fold.mli: Hls_cdfg
