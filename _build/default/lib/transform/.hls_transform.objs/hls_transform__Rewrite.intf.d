lib/transform/rewrite.mli: Cfg Dfg Hls_cdfg
