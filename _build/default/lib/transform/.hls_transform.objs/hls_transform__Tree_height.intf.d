lib/transform/tree_height.mli: Hls_cdfg
