lib/transform/strength.mli: Hls_cdfg
