lib/transform/unroll.mli: Hls_cdfg
