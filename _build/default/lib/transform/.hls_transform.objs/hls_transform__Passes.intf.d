lib/transform/passes.mli: Cfg Hls_cdfg
