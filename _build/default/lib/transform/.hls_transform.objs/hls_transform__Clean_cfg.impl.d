lib/transform/clean_cfg.ml: Array Cfg Dfg Graph_algo Hashtbl Hls_cdfg List Op Rewrite
