open Hls_cdfg

let copy_dfg g =
  let out, _ = Rewrite.rewrite_dfg g ~rule:(fun ~out:_ ~remap:_ _ _ ~mapped_args:_ -> Rewrite.Copy) in
  out

let succs_table cfg = Array.init (Cfg.n_blocks cfg) (fun bid -> Cfg.succs cfg bid)

let prune cfg =
  let n = Cfg.n_blocks cfg in
  let reach = Graph_algo.reachable ~succs:(succs_table cfg) ~entry:(Cfg.entry cfg) in
  let all_reachable = Array.for_all (fun r -> r) reach in
  if all_reachable then (cfg, false)
  else begin
    let remap = Array.make n (-1) in
    let out = Cfg.create () in
    for bid = 0 to n - 1 do
      if reach.(bid) then begin
        let b = Cfg.block cfg bid in
        remap.(bid) <- Cfg.add_block out ~label:b.Cfg.label b.Cfg.dfg b.Cfg.term
      end
    done;
    (* second pass: remap terminator targets *)
    for bid = 0 to n - 1 do
      if reach.(bid) then begin
        let new_term =
          match Cfg.term cfg bid with
          | Cfg.Goto t -> Cfg.Goto remap.(t)
          | Cfg.Branch (c, bt, bf) -> Cfg.Branch (c, remap.(bt), remap.(bf))
          | Cfg.Halt -> Cfg.Halt
        in
        Cfg.set_term out remap.(bid) new_term;
        match Cfg.trip_count cfg bid with
        | Some t -> Cfg.set_trip_count out remap.(bid) t
        | None -> ()
      end
    done;
    Cfg.set_entry out remap.(Cfg.entry cfg);
    Cfg.validate out;
    (out, true)
  end

(* Append block [b_src]'s dfg onto [a_dfg] (mutating a fresh copy), with
   reads of variables already written in [a] forwarded to the written
   value. Returns the combined graph and the remap of [b]'s node ids. *)
let concat_dfgs a_dfg b_dfg =
  let out = copy_dfg a_dfg in
  (* last written value per variable within a *)
  let written = Hashtbl.create 8 in
  List.iter
    (fun (v, wnid) ->
      match Dfg.args out wnid with
      | [ value ] -> Hashtbl.replace written v value
      | _ -> ())
    (Dfg.writes out);
  let n = Dfg.n_nodes b_dfg in
  let remap = Array.make n (-1) in
  Dfg.iter
    (fun id node ->
      let mapped = List.map (fun x -> remap.(x)) node.Dfg.args in
      match node.Dfg.op with
      | Op.Read v when Hashtbl.mem written v -> remap.(id) <- Hashtbl.find written v
      | _ -> remap.(id) <- Dfg.add out node.Dfg.op mapped node.Dfg.ty)
    b_dfg;
  (out, remap)

let find_mergeable cfg =
  let succs = succs_table cfg in
  let preds = Graph_algo.preds succs in
  let entry = Cfg.entry cfg in
  let rec search bid =
    if bid >= Cfg.n_blocks cfg then None
    else
      match Cfg.term cfg bid with
      | Cfg.Goto target
        when target <> bid && target <> entry && preds.(target) = [ bid ] ->
          Some (bid, target)
      | _ -> search (bid + 1)
  in
  search 0

let merge_once cfg =
  match find_mergeable cfg with
  | None -> false
  | Some (a, b) ->
      let combined, remap = concat_dfgs (Cfg.dfg cfg a) (Cfg.dfg cfg b) in
      let term =
        match Cfg.term cfg b with
        | Cfg.Branch (c, bt, bf) -> Cfg.Branch (remap.(c), bt, bf)
        | (Cfg.Goto _ | Cfg.Halt) as t -> t
      in
      Cfg.replace_dfg cfg a combined term;
      (* b keeps its old term but is now unreachable; prune removes it *)
      true

let merge cfg =
  let changed = ref false in
  while merge_once cfg do
    changed := true
  done;
  if !changed then begin
    let out, _ = prune cfg in
    (out, true)
  end
  else (cfg, false)
