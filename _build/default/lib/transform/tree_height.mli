(** Tree-height reduction: rebalance chains of one associative operator
    into a balanced tree, shortening the critical path and exposing
    parallelism to the scheduler (one of the paper's "high-level
    transformations" on the behavior).

    Applied only where the rewrite is bit-exact: two's-complement wrapping
    addition (integer or fixed-point), integer multiplication (modular),
    and the bitwise operators. Fixed-point multiplication truncates and is
    {e not} associative, so those chains are left alone. A chain is a
    maximal tree of same-operator/same-type nodes whose intermediate
    results have no other consumers. *)

val run : Hls_cdfg.Cfg.t -> bool
