open Hls_cdfg

let assoc_ok (op : Op.t) (ty : Hls_lang.Ast.ty) =
  match (op, ty) with
  | Op.Add, (Hls_lang.Ast.Tint _ | Hls_lang.Ast.Tfix _) -> true
  | Op.Mul, Hls_lang.Ast.Tint _ -> true
  | (Op.And | Op.Or | Op.Xor), _ -> true
  | _ -> false

let rewrite_one_block g =
  let users = Dfg.users g in
  let node_op id = (Dfg.node g id).Dfg.op in
  let node_ty id = (Dfg.node g id).Dfg.ty in
  (* internal chain node: same associative op/ty as its unique user *)
  let internal id =
    assoc_ok (node_op id) (node_ty id)
    && (match users.(id) with
       | [ u ] -> Op.equal (node_op u) (node_op id) && node_ty u = node_ty id
       | _ -> false)
  in
  let rec leaves id acc =
    (* pre-order, left to right *)
    List.fold_left
      (fun acc a -> if internal a then leaves a acc else a :: acc)
      acc (Dfg.args g id)
  in
  let is_root id =
    assoc_ok (node_op id) (node_ty id)
    && (not (internal id))
    && List.exists internal (Dfg.args g id)
  in
  let rule : Rewrite.rule =
   fun ~out ~remap id _node ~mapped_args:_ ->
    if internal id then Rewrite.Drop
    else if is_root id then begin
      let op = node_op id and ty = node_ty id in
      let old_leaves = List.rev (leaves id []) in
      let mapped = List.map (fun l -> remap.(l)) old_leaves in
      let rec pairup = function
        | [] -> []
        | [ x ] -> [ x ]
        | a :: b :: rest -> Dfg.add out op [ a; b ] ty :: pairup rest
      in
      let rec reduce = function
        | [ x ] -> x
        | xs -> reduce (pairup xs)
      in
      Rewrite.Subst (reduce mapped)
    end
    else Rewrite.Copy
  in
  rule

let run cfg =
  List.fold_left
    (fun acc bid ->
      let rule = rewrite_one_block (Cfg.dfg cfg bid) in
      Rewrite.rewrite_block cfg bid ~rule || acc)
    false (Cfg.block_ids cfg)
