lib/cdfg/liveness.mli: Cfg
