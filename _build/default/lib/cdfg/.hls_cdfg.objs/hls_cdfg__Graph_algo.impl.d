lib/cdfg/graph_algo.ml: Array Hashtbl List Queue
