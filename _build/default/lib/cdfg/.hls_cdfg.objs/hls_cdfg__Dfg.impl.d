lib/cdfg/dfg.ml: Array Dot Format Hls_lang Hls_util List Op Printf String Vec
