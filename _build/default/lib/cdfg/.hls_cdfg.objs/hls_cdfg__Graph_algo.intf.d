lib/cdfg/graph_algo.mli:
