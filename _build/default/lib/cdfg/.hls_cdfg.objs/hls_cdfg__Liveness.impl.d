lib/cdfg/liveness.ml: Array Cfg Dfg List Set String
