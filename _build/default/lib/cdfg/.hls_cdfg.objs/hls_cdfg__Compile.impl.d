lib/cdfg/compile.ml: Ast Cfg Dfg Fixedpt Hashtbl Hls_lang Hls_util Inline List Op Parser Typecheck Typed
