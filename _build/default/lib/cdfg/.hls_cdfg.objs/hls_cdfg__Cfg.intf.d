lib/cdfg/cfg.mli: Dfg Format
