lib/cdfg/compile.mli: Cfg Hls_lang
