lib/cdfg/cfg.ml: Array Dfg Dot Format Graph_algo Hashtbl Hls_lang Hls_util List Printf Vec
