lib/cdfg/op.mli: Format Hls_lang
