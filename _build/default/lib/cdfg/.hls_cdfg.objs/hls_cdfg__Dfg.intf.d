lib/cdfg/dfg.mli: Format Hls_lang Op
