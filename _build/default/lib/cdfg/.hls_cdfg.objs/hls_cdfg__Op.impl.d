lib/cdfg/op.ml: Fixedpt Format Hls_lang Hls_util Printf
