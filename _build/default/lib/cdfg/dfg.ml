open Hls_util

type nid = int

type node = { op : Op.t; args : nid list; ty : Hls_lang.Ast.ty }

type t = { nodes : node Vec.t }

let create () = { nodes = Vec.create () }

let n_nodes g = Vec.length g.nodes

let add g op args ty =
  let id = Vec.length g.nodes in
  if List.exists (fun a -> a < 0 || a >= id) args then
    invalid_arg "Dfg.add: argument ids must precede the new node";
  if List.length args <> Op.arity op then
    invalid_arg
      (Printf.sprintf "Dfg.add: %s expects %d arguments, got %d" (Op.to_string op)
         (Op.arity op) (List.length args));
  ignore (Vec.push g.nodes { op; args; ty });
  id

let node g id = Vec.get g.nodes id
let op g id = (node g id).op
let args g id = (node g id).args
let ty g id = (node g id).ty

let iter f g = Vec.iteri (fun id n -> f id n) g.nodes

let fold f init g =
  let acc = ref init in
  iter (fun id n -> acc := f !acc id n) g;
  !acc

let node_ids g = List.init (n_nodes g) (fun i -> i)

let users g =
  let table = Array.make (n_nodes g) [] in
  iter (fun id n -> List.iter (fun a -> table.(a) <- id :: table.(a)) n.args) g;
  Array.map List.rev table

let is_const g id = match op g id with Op.Const _ -> true | _ -> false

let is_entry_value g id =
  match op g id with Op.Const _ | Op.Read _ -> true | _ -> false

let fu_class_of g id =
  let n = node g id in
  match n.op with
  | Op.Shl | Op.Shr -> (
      match n.args with
      | [ _; amount ] when is_const g amount -> Op.C_free
      | _ -> Op.C_shift)
  | Op.Write _ -> (
      match n.args with
      | [ src ] when is_entry_value g src -> Op.C_alu (* register move *)
      | _ -> Op.C_none)
  | op -> Op.base_class op

let occupies_step g id =
  match fu_class_of g id with
  | Op.C_alu | Op.C_mul | Op.C_div | Op.C_shift -> true
  | Op.C_free | Op.C_none -> false

let compute_ops g =
  fold (fun acc id _ -> if occupies_step g id then id :: acc else acc) [] g
  |> List.rev

let reads g =
  fold
    (fun acc id n -> match n.op with Op.Read v -> (v, id) :: acc | _ -> acc)
    [] g
  |> List.rev

let writes g =
  fold
    (fun acc id n -> match n.op with Op.Write v -> (v, id) :: acc | _ -> acc)
    [] g
  |> List.rev

let path_length g =
  let n = n_nodes g in
  let table = users g in
  let pl = Array.make n 0 in
  for id = n - 1 downto 0 do
    let succ_max = List.fold_left (fun acc u -> max acc pl.(u)) 0 table.(id) in
    pl.(id) <- (if occupies_step g id then 1 else 0) + succ_max
  done;
  pl

let depth g =
  let n = n_nodes g in
  let d = Array.make n 0 in
  for id = 0 to n - 1 do
    let pred_max = List.fold_left (fun acc a -> max acc d.(a)) 0 (args g id) in
    d.(id) <- (if occupies_step g id then 1 else 0) + pred_max
  done;
  d

let structural_key g id =
  let n = node g id in
  Printf.sprintf "%s(%s):%s" (Op.to_string n.op)
    (String.concat "," (List.map string_of_int n.args))
    (Hls_lang.Ast.ty_to_string n.ty)

let pp ppf g =
  iter
    (fun id n ->
      Format.fprintf ppf "%%%d = %s%s : %s@." id (Op.to_string n.op)
        (match n.args with
        | [] -> ""
        | args -> "(" ^ String.concat ", " (List.map (Printf.sprintf "%%%d") args) ^ ")")
        (Hls_lang.Ast.ty_to_string n.ty))
    g

let to_dot ?(name = "dfg") g =
  let d = Dot.create name in
  iter
    (fun id n ->
      let label = Printf.sprintf "%d: %s" id (Op.to_string n.op) in
      Dot.node d ~attrs:[ ("label", label) ] (string_of_int id);
      List.iter (fun a -> Dot.edge d (string_of_int a) (string_of_int id)) n.args)
    g;
  Dot.render d
