open Hls_util
open Hls_lang
open Hls_lang.Typed

(* Open basic block under construction. [env] maps variables to the node
   currently holding their value; [assigned] lists variables (in first-
   assignment order) that must be written back at block exit. [consts]
   tracks variables whose current value is a known integer constant, for
   trip-count detection. *)
type bb = {
  dfg : Dfg.t;
  env : (string, Dfg.nid) Hashtbl.t;
  mutable assigned : string list;
  consts : (string, int) Hashtbl.t;
}

let fresh_bb () =
  { dfg = Dfg.create (); env = Hashtbl.create 8; assigned = []; consts = Hashtbl.create 8 }

let fmt_of_ty (ty : Ast.ty) =
  match ty with
  | Ast.Tbool -> Fixedpt.format ~int_bits:1 ~frac_bits:0
  | Ast.Tint w -> Fixedpt.format ~int_bits:w ~frac_bits:0
  | Ast.Tfix (i, f) -> Fixedpt.format ~int_bits:i ~frac_bits:f

let const_pattern (ty : Ast.ty) = function
  | `Int n -> (
      match ty with
      | Ast.Tbool -> if n <> 0 then 1 else 0
      | Ast.Tint _ -> Fixedpt.wrap (fmt_of_ty ty) n
      | Ast.Tfix _ -> Fixedpt.of_int (fmt_of_ty ty) n)
  | `Real x -> (
      match ty with
      | Ast.Tfix _ -> Fixedpt.of_float (fmt_of_ty ty) x
      | Ast.Tbool | Ast.Tint _ ->
          invalid_arg "Compile: real literal outside fixed-point context")

let read_var prog bb name =
  match Hashtbl.find_opt bb.env name with
  | Some nid -> nid
  | None ->
      let ty = Typed.var_ty prog name in
      let nid = Dfg.add bb.dfg (Op.Read name) [] ty in
      Hashtbl.replace bb.env name nid;
      nid

let assign_var prog bb name nid =
  ignore (Typed.var_ty prog name);
  if not (List.mem name bb.assigned) then bb.assigned <- bb.assigned @ [ name ];
  Hashtbl.replace bb.env name nid

let rec compile_expr prog bb (e : texpr) : Dfg.nid =
  match e.te with
  | TEint n -> Dfg.add bb.dfg (Op.Const (const_pattern e.ty (`Int n))) [] e.ty
  | TEreal x -> Dfg.add bb.dfg (Op.Const (const_pattern e.ty (`Real x))) [] e.ty
  | TEbool b -> Dfg.add bb.dfg (Op.Const (if b then 1 else 0)) [] Ast.Tbool
  | TEvar name -> read_var prog bb name
  | TEbin (op, a, b) ->
      let na = compile_expr prog bb a in
      let nb = compile_expr prog bb b in
      Dfg.add bb.dfg (Op.of_binop op) [ na; nb ] e.ty
  | TEun (Ast.Neg, a) ->
      let na = compile_expr prog bb a in
      Dfg.add bb.dfg Op.Neg [ na ] e.ty
  | TEun (Ast.Not, a) ->
      let na = compile_expr prog bb a in
      Dfg.add bb.dfg Op.Not [ na ] e.ty

(* ---- trip-count detection ---- *)

(* Count assignments to [name] in a statement list, and whether each is the
   increment idiom [name := name + 1]. Nested control counts as opaque. *)
let rec assignments_to name stmts =
  List.concat_map
    (fun st ->
      match st with
      | TSassign (n, rhs) when n = name -> [ `Assign rhs ]
      | TSassign _ -> []
      | TSif (_, a, b) ->
          if assignments_to name a <> [] || assignments_to name b <> [] then [ `Opaque ]
          else []
      | TSwhile (_, body) | TSrepeat (body, _) ->
          if assignments_to name body <> [] then [ `Opaque ] else []
      | TSfor (n, _, _, body) ->
          if n = name || assignments_to name body <> [] then [ `Opaque ] else [])
    stmts

let is_incr_by_one name (rhs : texpr) =
  match rhs.te with
  | TEbin (Ast.Add, { te = TEvar v; _ }, { te = TEint 1; _ }) when v = name -> true
  | TEbin (Ast.Add, { te = TEint 1; _ }, { te = TEvar v; _ }) when v = name -> true
  | _ -> false

(* Exit condition shapes handled: var CMP const. Returns the trip count for
   a loop whose counter starts at [c0] and steps by +1, where [exit_when]
   tells whether the loop stops when the condition is true (repeat/until)
   or false (while). *)
let trips_of_cond ~c0 ~until (cond : texpr) =
  let pick name k =
    (* for repeat..until cond: first counter value AFTER increment that
       satisfies cond ends the loop *)
    match (until, k) with
    | true, _ -> (
        (* until (i OP k); i takes values c0+1, c0+2, ... after each body *)
        match name with
        | Ast.Gt -> Some (k - c0) (* exits when i = k+1 -> k+1-c0 iterations *)
        | Ast.Ge -> Some (k - 1 - c0)
        | Ast.Eq -> Some (k - 1 - c0)
        | _ -> None)
    | false, _ -> (
        (* while (i OP k) do body; i starts at c0 *)
        match name with
        | Ast.Lt -> Some (k - c0)
        | Ast.Le -> Some (k - c0 + 1)
        | Ast.Ne -> Some (k - c0)
        | _ -> None)
  in
  match cond.te with
  | TEbin (op, { te = TEvar _; _ }, { te = TEint k; _ }) -> pick op k
  | _ -> None

let counter_var (cond : texpr) =
  match cond.te with
  | TEbin (_, { te = TEvar v; _ }, { te = TEint _; _ }) -> Some v
  | _ -> None

let detect_trip ~consts ~until cond body =
  match counter_var cond with
  | None -> None
  | Some name -> (
      match Hashtbl.find_opt consts name with
      | None -> None
      | Some c0 -> (
          match assignments_to name body with
          | [ `Assign rhs ] when is_incr_by_one name rhs ->
              let adjust = if until then 1 else 0 in
              (match trips_of_cond ~c0 ~until cond with
              | Some t when t + adjust >= 1 -> Some (t + adjust)
              | _ -> None)
          | _ -> None))

(* ---- statement compilation ---- *)

type ctx = { cfg : Cfg.t; prog : tprogram }

(* Finish the open block: append Write nodes for assigned variables, add
   the block with a placeholder terminator, and return its id. *)
let finish ctx bb term =
  List.iter
    (fun name ->
      let nid = Hashtbl.find bb.env name in
      let ty = Typed.var_ty ctx.prog name in
      ignore (Dfg.add bb.dfg (Op.Write name) [ nid ] ty))
    bb.assigned;
  Cfg.add_block ctx.cfg bb.dfg term

let track_const bb name (rhs : texpr) =
  match rhs.te with
  | TEint n -> Hashtbl.replace bb.consts name n
  | _ -> Hashtbl.remove bb.consts name

let rec compile_seq ctx bb (stmts : tstmt list) : bb =
  match stmts with
  | [] -> bb
  | TSassign (name, rhs) :: rest ->
      let nid = compile_expr ctx.prog bb rhs in
      assign_var ctx.prog bb name nid;
      track_const bb name rhs;
      compile_seq ctx bb rest
  | TSif (cond, then_, else_) :: rest ->
      let cond_nid = compile_expr ctx.prog bb cond in
      let bid_cond = finish ctx bb Cfg.Halt in
      let then_entry = Cfg.n_blocks ctx.cfg in
      let bb_then_end = compile_seq ctx (fresh_bb ()) then_ in
      let bid_then_end = finish ctx bb_then_end Cfg.Halt in
      let else_entry, bid_else_end =
        if else_ = [] then (None, None)
        else begin
          let entry = Cfg.n_blocks ctx.cfg in
          let bb_else_end = compile_seq ctx (fresh_bb ()) else_ in
          (Some entry, Some (finish ctx bb_else_end Cfg.Halt))
        end
      in
      let join = Cfg.n_blocks ctx.cfg in
      let else_target = match else_entry with Some e -> e | None -> join in
      Cfg.set_term ctx.cfg bid_cond (Cfg.Branch (cond_nid, then_entry, else_target));
      Cfg.set_term ctx.cfg bid_then_end (Cfg.Goto join);
      (match bid_else_end with
      | Some b -> Cfg.set_term ctx.cfg b (Cfg.Goto join)
      | None -> ());
      compile_seq ctx (fresh_bb ()) rest
  | TSwhile (cond, body) :: rest ->
      let trip = detect_trip ~consts:bb.consts ~until:false cond body in
      let header = Cfg.n_blocks ctx.cfg + 1 in
      let _bid_pre = finish ctx bb (Cfg.Goto header) in
      let bb_header = fresh_bb () in
      let cond_nid = compile_expr ctx.prog bb_header cond in
      let bid_header = finish ctx bb_header Cfg.Halt in
      let body_entry = Cfg.n_blocks ctx.cfg in
      let bb_body_end = compile_seq ctx (fresh_bb ()) body in
      let bid_body_end = finish ctx bb_body_end (Cfg.Goto bid_header) in
      ignore bid_body_end;
      let exit = Cfg.n_blocks ctx.cfg in
      Cfg.set_term ctx.cfg bid_header (Cfg.Branch (cond_nid, body_entry, exit));
      (match trip with Some t -> Cfg.set_trip_count ctx.cfg bid_header t | None -> ());
      compile_seq ctx (fresh_bb ()) rest
  | TSrepeat (body, cond) :: rest ->
      let trip = detect_trip ~consts:bb.consts ~until:true cond body in
      let body_entry = Cfg.n_blocks ctx.cfg + 1 in
      let _bid_pre = finish ctx bb (Cfg.Goto body_entry) in
      let bb_body_end = compile_seq ctx (fresh_bb ()) body in
      let cond_nid = compile_expr ctx.prog bb_body_end cond in
      let bid_body_end = finish ctx bb_body_end Cfg.Halt in
      let exit = Cfg.n_blocks ctx.cfg in
      Cfg.set_term ctx.cfg bid_body_end (Cfg.Branch (cond_nid, exit, body_entry));
      (match trip with Some t -> Cfg.set_trip_count ctx.cfg body_entry t | None -> ());
      compile_seq ctx (fresh_bb ()) rest
  | TSfor (name, from_, to_, body) :: rest ->
      (* desugar to: name := from; while name <= to do body; name := name+1 end *)
      let var_ty = Typed.var_ty ctx.prog name in
      let cond =
        { te = TEbin (Ast.Le, { te = TEvar name; ty = var_ty }, to_); ty = Ast.Tbool }
      in
      let incr =
        TSassign
          ( name,
            {
              te = TEbin (Ast.Add, { te = TEvar name; ty = var_ty }, { te = TEint 1; ty = var_ty });
              ty = var_ty;
            } )
      in
      let desugared = TSassign (name, from_) :: TSwhile (cond, body @ [ incr ]) :: rest in
      compile_seq ctx bb desugared

let compile (prog : tprogram) : Cfg.t =
  let cfg = Cfg.create () in
  let ctx = { cfg; prog } in
  let bb_end = compile_seq ctx (fresh_bb ()) prog.tbody in
  let _last = finish ctx bb_end Cfg.Halt in
  Cfg.set_entry cfg 0;
  Cfg.validate cfg;
  cfg

let compile_source src =
  let ast = Inline.expand (Parser.parse src) in
  let tprog = Typecheck.check ast in
  (tprog, compile tprog)
