(** Compilation of a type-checked behavioral program into a control-flow
    graph of data-flow blocks — the first synthesis step of section 2.

    Within a basic block, assignments are resolved to value arcs (variable
    reuse does not serialize independent computations); variables crossing
    block boundaries are anchored with [Read]/[Write] nodes. Loop trip
    counts are detected for counted [for] loops and for the common
    counter idiom ([i := c0] before the loop; [i := i + 1] inside;
    exit condition comparing [i] against a constant — exactly the shape of
    the paper's sqrt example) and recorded in the CFG. *)

val compile : Hls_lang.Typed.tprogram -> Cfg.t
(** The resulting CFG is validated before being returned. *)

val compile_source : string -> Hls_lang.Typed.tprogram * Cfg.t
(** Convenience: parse, inline-expand procedures, type-check and compile
    BSL source text. *)
