module SS = Set.Make (String)

type t = { ins : SS.t array; outs : SS.t array; vars : SS.t }

let analyze ?(live_at_exit = []) (cfg : Cfg.t) =
  let n = Cfg.n_blocks cfg in
  let use = Array.make n SS.empty in
  let def = Array.make n SS.empty in
  let vars = ref SS.empty in
  Cfg.iter
    (fun bid b ->
      List.iter
        (fun (v, _) ->
          use.(bid) <- SS.add v use.(bid);
          vars := SS.add v !vars)
        (Dfg.reads b.dfg);
      List.iter
        (fun (v, _) ->
          def.(bid) <- SS.add v def.(bid);
          vars := SS.add v !vars)
        (Dfg.writes b.dfg))
    cfg;
  let exit_live = SS.of_list live_at_exit in
  let ins = Array.make n SS.empty in
  let outs = Array.make n SS.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    for bid = n - 1 downto 0 do
      let out =
        match Cfg.term cfg bid with
        | Cfg.Halt -> exit_live
        | t ->
            List.fold_left
              (fun acc s -> SS.union acc ins.(s))
              SS.empty
              (match t with
              | Cfg.Goto b -> [ b ]
              | Cfg.Branch (_, bt, bf) -> [ bt; bf ]
              | Cfg.Halt -> [])
      in
      let inn = SS.union use.(bid) (SS.diff out def.(bid)) in
      if not (SS.equal out outs.(bid) && SS.equal inn ins.(bid)) then begin
        outs.(bid) <- out;
        ins.(bid) <- inn;
        changed := true
      end
    done
  done;
  { ins; outs; vars = !vars }

let live_in t bid = SS.elements t.ins.(bid)

let live_out t bid = SS.elements t.outs.(bid)

let interfere t a b =
  if a = b then true
  else
    Array.exists (fun s -> SS.mem a s && SS.mem b s) t.ins
    || Array.exists (fun s -> SS.mem a s && SS.mem b s) t.outs

let all_variables t = SS.elements t.vars
