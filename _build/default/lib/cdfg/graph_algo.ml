let preds succs =
  let n = Array.length succs in
  let table = Array.make n [] in
  Array.iteri (fun src dsts -> List.iter (fun d -> table.(d) <- src :: table.(d)) dsts) succs;
  Array.map List.rev table

let reverse_postorder ~succs ~entry =
  let n = Array.length succs in
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs v =
    if not visited.(v) then begin
      visited.(v) <- true;
      List.iter dfs succs.(v);
      order := v :: !order
    end
  in
  dfs entry;
  !order

let reachable ~succs ~entry =
  let n = Array.length succs in
  let seen = Array.make n false in
  let rec dfs v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter dfs succs.(v)
    end
  in
  dfs entry;
  seen

(* Cooper–Harvey–Kennedy "A Simple, Fast Dominance Algorithm". *)
let dominators ~succs ~entry =
  let n = Array.length succs in
  let rpo = reverse_postorder ~succs ~entry in
  let rpo_index = Array.make n (-1) in
  List.iteri (fun i v -> rpo_index.(v) <- i) rpo;
  let pred_table = preds succs in
  let idom = Array.make n (-1) in
  idom.(entry) <- entry;
  let rec intersect a b =
    if a = b then a
    else if rpo_index.(a) > rpo_index.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun v ->
        if v <> entry then begin
          let processed_preds =
            List.filter (fun p -> idom.(p) <> -1) pred_table.(v)
          in
          match processed_preds with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(v) <> new_idom then begin
                idom.(v) <- new_idom;
                changed := true
              end
        end)
      rpo
  done;
  idom

let dominates ~idom a b =
  let rec walk v = if v = a then true else if idom.(v) = v || idom.(v) = -1 then false else walk idom.(v) in
  if idom.(b) = -1 then false else walk b

let back_edges ~succs ~entry =
  let idom = dominators ~succs ~entry in
  let edges = ref [] in
  Array.iteri
    (fun src dsts ->
      if idom.(src) <> -1 then
        List.iter
          (fun dst -> if dominates ~idom dst src then edges := (src, dst) :: !edges)
          dsts)
    succs;
  List.rev !edges

let natural_loop ~succs ~back_edge:(tail, header) =
  let pred_table = preds succs in
  let members = Hashtbl.create 8 in
  Hashtbl.add members header ();
  let rec climb v =
    if not (Hashtbl.mem members v) then begin
      Hashtbl.add members v ();
      List.iter climb pred_table.(v)
    end
  in
  climb tail;
  Hashtbl.fold (fun v () acc -> v :: acc) members [] |> List.sort compare

let loops ~succs ~entry =
  let edges = back_edges ~succs ~entry in
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (tail, header) ->
      let body = natural_loop ~succs ~back_edge:(tail, header) in
      let cur = try Hashtbl.find by_header header with Not_found -> [] in
      Hashtbl.replace by_header header (List.sort_uniq compare (cur @ body)))
    edges;
  Hashtbl.fold (fun h body acc -> (h, body) :: acc) by_header []
  |> List.sort compare

let topo_sort ~succs =
  let n = Array.length succs in
  let indeg = Array.make n 0 in
  Array.iter (fun dsts -> List.iter (fun d -> indeg.(d) <- indeg.(d) + 1) dsts) succs;
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) indeg;
  let order = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr count;
    order := v :: !order;
    List.iter
      (fun d ->
        indeg.(d) <- indeg.(d) - 1;
        if indeg.(d) = 0 then Queue.add d queue)
      succs.(v)
  done;
  if !count = n then Some (List.rev !order) else None

let longest_path ~succs ~weight =
  match topo_sort ~succs with
  | None -> invalid_arg "Graph_algo.longest_path: graph has a cycle"
  | Some order ->
      let n = Array.length succs in
      let lp = Array.make n 0 in
      List.iter
        (fun v ->
          let succ_max = List.fold_left (fun acc s -> max acc lp.(s)) 0 succs.(v) in
          lp.(v) <- weight v + succ_max)
        (List.rev order);
      lp
