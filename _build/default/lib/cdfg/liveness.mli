(** Variable liveness over the CFG (backward dataflow fixpoint).

    A variable is {e used} by a block if the block contains a [Read] of it
    and {e defined} if it contains a [Write]. Output ports are treated as
    live at [Halt] so their final values are preserved. The results drive
    dead-write elimination and cross-block register sharing. *)

type t

val analyze : ?live_at_exit:string list -> Cfg.t -> t
(** [live_at_exit] lists variables (typically output ports) considered
    live after a [Halt] block. *)

val live_in : t -> Cfg.bid -> string list
(** Variables live on entry to the block, sorted. *)

val live_out : t -> Cfg.bid -> string list
(** Variables live on exit from the block, sorted. *)

val interfere : t -> string -> string -> bool
(** Whether two variables are simultaneously live at some block boundary
    (hence cannot share a register). A variable always interferes with
    itself. *)

val all_variables : t -> string list
(** Every variable read or written anywhere in the CFG, sorted. *)
