(** Control-flow graph: basic blocks of straight-line DFGs linked by
    (conditional) branches. This is the "internal representation containing
    both the data flow and the control flow implied by the specification"
    that high-level synthesis compiles into (section 2).

    Loop trip counts, when statically known (fixed iteration counts such as
    the 4 Newton iterations of the paper's sqrt example), are recorded per
    loop-header block and drive total-schedule-length reporting
    (e.g. "3 + 4*5 = 23 control steps"). *)

type bid = int

type term =
  | Goto of bid
  | Branch of Dfg.nid * bid * bid
      (** condition value in this block's DFG; (taken-if-true, if-false) *)
  | Halt  (** end of the behavior *)

type block = { label : string; dfg : Dfg.t; term : term }

type t

val create : unit -> t

val add_block : t -> ?label:string -> Dfg.t -> term -> bid
(** Append a block. Terminator targets may be forward references; call
    {!validate} once construction finishes. *)

val set_term : t -> bid -> term -> unit
(** Patch a block's terminator (used to wire forward branches). *)

val set_entry : t -> bid -> unit
val entry : t -> bid
val n_blocks : t -> int
val block : t -> bid -> block
val dfg : t -> bid -> Dfg.t
val term : t -> bid -> term
val iter : (bid -> block -> unit) -> t -> unit
val block_ids : t -> bid list

val replace_dfg : t -> bid -> Dfg.t -> term -> unit
(** Swap a block's body and terminator, used by optimization passes. *)

val set_trip_count : t -> bid -> int -> unit
(** Record that the loop headed at the block runs a known number of times. *)

val trip_count : t -> bid -> int option

val succs : t -> bid -> bid list
val validate : t -> unit
(** Check structural sanity: entry exists, every terminator target is a
    valid block, every branch condition is a bool-typed node of its own
    block. Raises [Invalid_argument] on violation. *)

val exec_frequency : t -> bid -> int
(** Static execution count of a block assuming every loop runs its
    recorded trip count (1 when the block is outside all counted loops).
    Used for total-latency reporting. Nested counted loops multiply. *)

val pp : Format.formatter -> t -> unit
val to_dot : ?name:string -> t -> string
