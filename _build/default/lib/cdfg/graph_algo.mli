(** Graph algorithms over dense integer-indexed directed graphs,
    parameterized by a successor table. Used on the CFG (dominators,
    natural loops) and on DFGs (orderings). *)

val preds : int list array -> int list array
(** Reverse the successor table. *)

val reverse_postorder : succs:int list array -> entry:int -> int list
(** Reverse postorder of the nodes reachable from [entry]. *)

val reachable : succs:int list array -> entry:int -> bool array

val dominators : succs:int list array -> entry:int -> int array
(** Immediate-dominator table (Cooper–Harvey–Kennedy iteration).
    [idom.(entry) = entry]; unreachable nodes map to [-1]. *)

val dominates : idom:int array -> int -> int -> bool
(** [dominates ~idom a b]: does [a] dominate [b]? *)

val back_edges : succs:int list array -> entry:int -> (int * int) list
(** Edges [(src, dst)] where [dst] dominates [src] — loop back edges. *)

val natural_loop : succs:int list array -> back_edge:int * int -> int list
(** Blocks of the natural loop of a back edge [(tail, header)]: the header
    plus all nodes that reach [tail] without passing through the header.
    Sorted ascending. *)

val loops : succs:int list array -> entry:int -> (int * int list) list
(** All natural loops as [(header, members)], one entry per distinct
    header (back edges sharing a header are merged). *)

val topo_sort : succs:int list array -> int list option
(** Topological order of an acyclic graph, or [None] if a cycle exists. *)

val longest_path : succs:int list array -> weight:(int -> int) -> int array
(** For a DAG: maximum total weight of any path starting at each node,
    inclusive of the node's own weight. Raises [Invalid_argument] on a
    cyclic graph. *)
