(** Data-flow graph of one basic block.

    Nodes are operations producing exactly one value; arcs are the
    producer→consumer relations implied by the specification (section 2 of
    the paper: "each value produced by one operation and consumed by
    another is represented uniquely by an arc").

    Invariant: node identifiers are allocated in topological order — every
    argument of a node has a smaller id. All analyses rely on this; graph
    rewrites therefore rebuild a fresh graph rather than mutate in place. *)

type nid = int

type node = { op : Op.t; args : nid list; ty : Hls_lang.Ast.ty }

type t

val create : unit -> t

val add : t -> Op.t -> nid list -> Hls_lang.Ast.ty -> nid
(** Append a node. Raises [Invalid_argument] if an argument id is not
    smaller than the new node's id, or if the argument count does not
    match the operator's arity. *)

val n_nodes : t -> int
val node : t -> nid -> node
val op : t -> nid -> Op.t
val args : t -> nid -> nid list
val ty : t -> nid -> Hls_lang.Ast.ty

val iter : (nid -> node -> unit) -> t -> unit
val fold : ('acc -> nid -> node -> 'acc) -> 'acc -> t -> 'acc
val node_ids : t -> nid list

val users : t -> nid list array
(** [users g] is the table mapping each node to the nodes consuming its
    value, in ascending order. Recomputed on each call. *)

val fu_class_of : t -> nid -> Op.fu_class
(** Context-sensitive functional-unit class: shifts by a constant amount
    are [C_free]; a [Write] whose argument is a constant or a [Read] is a
    register move occupying an ALU slot; a [Write] of a computed value is
    [C_none] (it rides along with its producer's step). *)

val occupies_step : t -> nid -> bool
(** Whether the node consumes a control-step slot on a functional unit
    (class is alu/mul/div/shift). *)

val compute_ops : t -> nid list
(** All nodes with [occupies_step], in topological (id) order. *)

val reads : t -> (string * nid) list
(** Variable reads, in id order. *)

val writes : t -> (string * nid) list
(** Variable writes, in id order. *)

val path_length : t -> int array
(** [path_length g] maps each node to the number of step-occupying
    operations on the longest dependence path starting at it (inclusive).
    This is the classic list-scheduling priority "length of path to the
    end of the block". *)

val depth : t -> int array
(** Dual of {!path_length}: number of step-occupying operations on the
    longest path from any source {e to} each node, inclusive. *)

val structural_key : t -> nid -> string
(** Key identifying the node's operator/arguments/type, used by common
    subexpression elimination. Two nodes with equal keys compute the same
    value within a block. *)

val pp : Format.formatter -> t -> unit

val to_dot : ?name:string -> t -> string
(** Graphviz rendering with operator labels. *)
