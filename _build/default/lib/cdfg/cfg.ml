open Hls_util

type bid = int

type term = Goto of bid | Branch of Dfg.nid * bid * bid | Halt

type block = { label : string; dfg : Dfg.t; term : term }

type t = {
  blocks : block Vec.t;
  mutable entry_bid : bid;
  trip_counts : (bid, int) Hashtbl.t;
}

let create () = { blocks = Vec.create (); entry_bid = 0; trip_counts = Hashtbl.create 8 }

let add_block t ?label dfg term =
  let bid = Vec.length t.blocks in
  let label = match label with Some l -> l | None -> Printf.sprintf "b%d" bid in
  ignore (Vec.push t.blocks { label; dfg; term });
  bid

let set_term t bid term =
  let b = Vec.get t.blocks bid in
  Vec.set t.blocks bid { b with term }

let set_entry t bid = t.entry_bid <- bid
let entry t = t.entry_bid
let n_blocks t = Vec.length t.blocks
let block t bid = Vec.get t.blocks bid
let dfg t bid = (block t bid).dfg
let term t bid = (block t bid).term
let iter f t = Vec.iteri (fun bid b -> f bid b) t.blocks
let block_ids t = List.init (n_blocks t) (fun i -> i)

let replace_dfg t bid dfg term =
  let b = Vec.get t.blocks bid in
  Vec.set t.blocks bid { b with dfg; term }

let set_trip_count t bid n = Hashtbl.replace t.trip_counts bid n

let trip_count t bid = Hashtbl.find_opt t.trip_counts bid

let succs_of_term = function
  | Goto b -> [ b ]
  | Branch (_, bt, bf) -> [ bt; bf ]
  | Halt -> []

let succs t bid = succs_of_term (term t bid)

let succs_table t = Array.init (n_blocks t) (fun bid -> succs t bid)

let validate t =
  let n = n_blocks t in
  if n = 0 then invalid_arg "Cfg.validate: empty graph";
  if t.entry_bid < 0 || t.entry_bid >= n then invalid_arg "Cfg.validate: bad entry";
  iter
    (fun bid b ->
      List.iter
        (fun target ->
          if target < 0 || target >= n then
            invalid_arg
              (Printf.sprintf "Cfg.validate: block %d branches to missing block %d" bid
                 target))
        (succs_of_term b.term);
      match b.term with
      | Branch (cond, _, _) ->
          if cond < 0 || cond >= Dfg.n_nodes b.dfg then
            invalid_arg
              (Printf.sprintf "Cfg.validate: block %d branch condition %%%d missing" bid
                 cond);
          if Dfg.ty b.dfg cond <> Hls_lang.Ast.Tbool then
            invalid_arg
              (Printf.sprintf "Cfg.validate: block %d branch condition is not bool" bid)
      | Goto _ | Halt -> ())
    t

let exec_frequency t bid =
  let table = succs_table t in
  let loop_list = Graph_algo.loops ~succs:table ~entry:t.entry_bid in
  List.fold_left
    (fun freq (header, members) ->
      match trip_count t header with
      | Some trips when List.mem bid members -> freq * trips
      | _ -> freq)
    1 loop_list

let term_to_string t = function
  | Goto b -> Printf.sprintf "goto %s" (block t b).label
  | Branch (c, bt, bf) ->
      Printf.sprintf "branch %%%d ? %s : %s" c (block t bt).label (block t bf).label
  | Halt -> "halt"

let pp ppf t =
  iter
    (fun bid b ->
      let trips =
        match trip_count t bid with
        | Some n -> Printf.sprintf "  -- trip count %d" n
        | None -> ""
      in
      Format.fprintf ppf "%s%s:%s@." b.label
        (if bid = t.entry_bid then " (entry)" else "")
        trips;
      Format.fprintf ppf "%a" Dfg.pp b.dfg;
      Format.fprintf ppf "  %s@." (term_to_string t b.term))
    t

let to_dot ?(name = "cfg") t =
  let d = Dot.create name in
  iter
    (fun bid b ->
      let ops = Dfg.n_nodes b.dfg in
      Dot.node d
        ~attrs:[ ("label", Printf.sprintf "%s\n%d ops" b.label ops); ("shape", "box") ]
        b.label;
      List.iter
        (fun target -> Dot.edge d b.label (block t target).label)
        (succs_of_term b.term);
      ignore bid)
    t;
  Dot.render d
