lib/util/table.mli:
