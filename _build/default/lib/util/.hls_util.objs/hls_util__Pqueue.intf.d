lib/util/pqueue.mli:
