lib/util/binprog.ml: Array Fun Hashtbl List
