lib/util/binprog.mli:
