lib/util/fixedpt.ml: Float
