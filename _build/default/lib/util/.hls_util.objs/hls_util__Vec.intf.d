lib/util/vec.mli:
