lib/util/dot.mli:
