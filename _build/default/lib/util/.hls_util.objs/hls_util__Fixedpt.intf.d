lib/util/fixedpt.mli:
