(** Tiny 0/1 (pseudo-boolean) constraint solver — the substrate for the
    paper's mathematical-programming formulations (Hafer & Parker):
    "creating a variable for each possible assignment of an operation,
    register or interconnection to a hardware element. The variable is
    one if the assignment is made and zero if it is not."

    The model is a set of {e selection groups} (exactly one variable of
    each group is 1 — one assignment per element), side constraints
    (at-most-k sums, implications, forbidden combinations) and a linear
    objective to minimize. Solving is exact branch-and-bound over the
    groups; intended for the small instances where exhaustive search is
    honest ("finding an optimal solution requires exhaustive search,
    which is very expensive ... so that larger examples can be
    considered" — heuristics cover those). *)

type t
type var = int

val create : unit -> t

val new_var : t -> string -> var
(** A fresh 0/1 variable (the name is for diagnostics). *)

val n_vars : t -> int

val add_group : t -> var list -> unit
(** Exactly one of the variables is 1. Every variable must belong to
    exactly one group (free variables can form singleton... a variable in
    no group is treated as an independent 0/1 decision searched last). *)

val at_most : t -> int -> var list -> unit
(** Σ variables ≤ k. *)

val implies : t -> var -> var -> unit
(** first = 1 ⇒ second = 1. *)

val forbid_pair : t -> var -> var -> unit
(** Not both 1. *)

val solve : ?objective:(var * int) list -> t -> (var -> bool) option
(** Exact search: returns an assignment satisfying all constraints and
    minimizing the objective (sum of weights of true variables), or
    [None] if unsatisfiable. Deterministic. Exponential in the worst
    case; guarded by a node budget — raises [Invalid_argument] when the
    instance exceeds roughly 10⁷ search nodes. *)
