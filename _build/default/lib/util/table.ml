type t = { headers : string list; mutable rows : string list list }

let create ~headers = { headers; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let add_rows t rows = List.iter (add_row t) rows

let render t =
  let rows = List.rev t.rows in
  let ncols =
    List.fold_left (fun acc r -> max acc (List.length r)) (List.length t.headers) rows
  in
  let pad row =
    let len = List.length row in
    if len >= ncols then row else row @ List.init (ncols - len) (fun _ -> "")
  in
  let all = pad t.headers :: List.map pad rows in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter measure all;
  let buf = Buffer.create 256 in
  let emit_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        if i < ncols - 1 then
          Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row (pad t.headers);
  let sep = List.init ncols (fun i -> String.make widths.(i) '-') in
  emit_row sep;
  List.iter emit_row (List.map pad rows);
  Buffer.contents buf

let print t = print_string (render t)
