(** Plain-text table rendering for reports and benchmark output. *)

type t

val create : headers:string list -> t
(** New table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row. Rows shorter than the header are padded with empty
    cells; longer rows extend the table width. *)

val add_rows : t -> string list list -> unit

val render : t -> string
(** Multi-line string with aligned columns and a header separator. *)

val print : t -> unit
(** [render] followed by [print_string]. *)
