(** Growable array, the backing store for graph node tables. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> int
(** Append and return the index of the new element. *)

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] when out of bounds. *)

val set : 'a t -> int -> 'a -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val to_list : 'a t -> 'a list
val of_list : 'a list -> 'a t
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
