(** Union–find (disjoint set) over dense integer identifiers.

    Used by the clique-partitioning allocator to merge compatible
    operations/values into shared hardware groups. *)

type t

val create : int -> t
(** [create n] is a structure over elements [0 .. n-1], each in its own
    singleton set. *)

val find : t -> int -> int
(** Canonical representative of the element's set (path compression). *)

val union : t -> int -> int -> unit
(** Merge the two sets (union by rank). No effect if already merged. *)

val same : t -> int -> int -> bool
(** Whether the two elements are in the same set. *)

val groups : t -> int list list
(** All sets, each as a list of members in ascending order. Groups are
    ordered by their smallest member. *)
