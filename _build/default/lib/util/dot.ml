type item = Node of string * (string * string) list | Edge of string * string * (string * string) list

type t = { name : string; directed : bool; mutable items : item list }

let create ?(directed = true) name = { name; directed; items = [] }

let node t ?(attrs = []) id = t.items <- Node (id, attrs) :: t.items

let edge t ?(attrs = []) src dst = t.items <- Edge (src, dst, attrs) :: t.items

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let attrs_str = function
  | [] -> ""
  | attrs ->
      let parts =
        List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape v)) attrs
      in
      " [" ^ String.concat ", " parts ^ "]"

let render t =
  let buf = Buffer.create 512 in
  let kw = if t.directed then "digraph" else "graph" in
  let arrow = if t.directed then "->" else "--" in
  Buffer.add_string buf (Printf.sprintf "%s \"%s\" {\n" kw (escape t.name));
  List.iter
    (fun item ->
      match item with
      | Node (id, attrs) ->
          Buffer.add_string buf (Printf.sprintf "  \"%s\"%s;\n" (escape id) (attrs_str attrs))
      | Edge (src, dst, attrs) ->
          Buffer.add_string buf
            (Printf.sprintf "  \"%s\" %s \"%s\"%s;\n" (escape src) arrow (escape dst)
               (attrs_str attrs)))
    (List.rev t.items);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
