type t = { lo : int; hi : int }

let make lo hi =
  if lo > hi then invalid_arg "Interval.make: lo > hi";
  { lo; hi }

let overlaps a b = a.lo <= b.hi && b.lo <= a.hi

let contains a x = a.lo <= x && x <= a.hi

let merge a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let length a = a.hi - a.lo + 1

let compare_lo a b =
  let c = compare a.lo b.lo in
  if c <> 0 then c else compare a.hi b.hi

(* Sweep: +1 at lo, -1 just past hi. *)
let max_overlap ivs =
  let events =
    List.concat_map (fun iv -> [ (iv.lo, 1); (iv.hi + 1, -1) ]) ivs
    |> List.sort compare
  in
  let _, best =
    List.fold_left
      (fun (cur, best) (_, d) ->
        let cur = cur + d in
        (cur, max best cur))
      (0, 0) events
  in
  best

let pp ppf a = Format.fprintf ppf "[%d,%d]" a.lo a.hi
