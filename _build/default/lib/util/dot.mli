(** Minimal Graphviz DOT emission for graphs produced by the toolkit. *)

type t

val create : ?directed:bool -> string -> t
(** [create name] starts a (by default directed) graph. *)

val node : t -> ?attrs:(string * string) list -> string -> unit
(** Declare a node with optional attributes (e.g. [("label", "+")]). *)

val edge : t -> ?attrs:(string * string) list -> string -> string -> unit
(** Declare an edge from the first node to the second. *)

val render : t -> string
(** The complete DOT source text. *)
