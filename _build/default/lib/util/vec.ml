type 'a t = { mutable data : 'a option array; mutable size : int }

let create () = { data = [||]; size = 0 }

let length v = v.size

let grow v =
  let cap = Array.length v.data in
  if v.size >= cap then begin
    let ncap = if cap = 0 then 8 else cap * 2 in
    let ndata = Array.make ncap None in
    Array.blit v.data 0 ndata 0 v.size;
    v.data <- ndata
  end

let push v x =
  grow v;
  let i = v.size in
  v.data.(i) <- Some x;
  v.size <- v.size + 1;
  i

let get v i =
  if i < 0 || i >= v.size then invalid_arg "Vec.get: index out of bounds";
  match v.data.(i) with Some x -> x | None -> invalid_arg "Vec.get: hole"

let set v i x =
  if i < 0 || i >= v.size then invalid_arg "Vec.set: index out of bounds";
  v.data.(i) <- Some x

let iteri f v =
  for i = 0 to v.size - 1 do
    f i (get v i)
  done

let to_list v =
  let rec build i acc = if i < 0 then acc else build (i - 1) (get v i :: acc) in
  build (v.size - 1) []

let of_list xs =
  let v = create () in
  List.iter (fun x -> ignore (push v x)) xs;
  v

let fold_left f init v =
  let acc = ref init in
  iteri (fun _ x -> acc := f !acc x) v;
  !acc

let exists p v =
  let rec loop i = i < v.size && (p (get v i) || loop (i + 1)) in
  loop 0
