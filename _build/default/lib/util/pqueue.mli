(** Mutable binary-heap priority queue.

    The queue pops the element with the {e smallest} priority first, where
    priorities are compared with the [cmp] function supplied at creation.
    Ties are broken by insertion order (FIFO), which makes the schedulers
    built on top of this queue deterministic. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty queue ordered by [cmp]. *)

val length : 'a t -> int
(** Number of queued elements. *)

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Insert an element. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum element, or [None] when empty. *)

val peek : 'a t -> 'a option
(** Return the minimum element without removing it. *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t
(** Queue containing all elements of the list. *)

val to_sorted_list : 'a t -> 'a list
(** Drain the queue; returns the elements in ascending priority order.
    The queue is empty afterwards. *)
