(* Binary min-heap with FIFO tie-breaking via a monotone sequence number.
   Slots are [option] so no dummy values are ever fabricated. *)

type 'a entry = { value : 'a; seq : int }

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a entry option array;
  mutable size : int;
  mutable next_seq : int;
}

let create ~cmp = { cmp; data = [||]; size = 0; next_seq = 0 }

let length q = q.size

let is_empty q = q.size = 0

let entry_cmp q a b =
  let c = q.cmp a.value b.value in
  if c <> 0 then c else compare a.seq b.seq

let get q i =
  match q.data.(i) with
  | Some e -> e
  | None -> invalid_arg "Pqueue: internal hole"

let grow q =
  let cap = Array.length q.data in
  if q.size >= cap then begin
    let ncap = if cap = 0 then 8 else cap * 2 in
    let ndata = Array.make ncap None in
    Array.blit q.data 0 ndata 0 q.size;
    q.data <- ndata
  end

let swap q i j =
  let tmp = q.data.(i) in
  q.data.(i) <- q.data.(j);
  q.data.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_cmp q (get q i) (get q parent) < 0 then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && entry_cmp q (get q l) (get q !smallest) < 0 then smallest := l;
  if r < q.size && entry_cmp q (get q r) (get q !smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let push q v =
  grow q;
  q.data.(q.size) <- Some { value = v; seq = q.next_seq };
  q.next_seq <- q.next_seq + 1;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let peek q = if q.size = 0 then None else Some (get q 0).value

let pop q =
  if q.size = 0 then None
  else begin
    let top = (get q 0).value in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.data.(0) <- q.data.(q.size);
      q.data.(q.size) <- None;
      sift_down q 0
    end
    else q.data.(0) <- None;
    Some top
  end

let of_list ~cmp xs =
  let q = create ~cmp in
  List.iter (push q) xs;
  q

let to_sorted_list q =
  let rec drain acc =
    match pop q with None -> List.rev acc | Some v -> drain (v :: acc)
  in
  drain []
