type var = int

type constraint_ =
  | At_most of int * var list
  | Implies of var * var
  | Forbid of var * var

type t = {
  mutable names : string list;  (* reversed *)
  mutable count : int;
  mutable groups : var list list;  (* reversed order of addition *)
  mutable constraints : constraint_ list;
}

let create () = { names = []; count = 0; groups = []; constraints = [] }

let new_var t name =
  let v = t.count in
  t.count <- t.count + 1;
  t.names <- name :: t.names;
  v

let n_vars t = t.count

let add_group t vars =
  if vars = [] then invalid_arg "Binprog.add_group: empty group";
  t.groups <- vars :: t.groups

let at_most t k vars = t.constraints <- At_most (k, vars) :: t.constraints

let implies t a b = t.constraints <- Implies (a, b) :: t.constraints

let forbid_pair t a b = t.constraints <- Forbid (a, b) :: t.constraints

(* assignment: 0 = false, 1 = true, -1 = undecided *)
let check_partial constraints assign =
  List.for_all
    (fun c ->
      match c with
      | At_most (k, vars) ->
          let trues = List.length (List.filter (fun v -> assign.(v) = 1) vars) in
          trues <= k
      | Implies (a, b) -> not (assign.(a) = 1 && assign.(b) = 0)
      | Forbid (a, b) -> not (assign.(a) = 1 && assign.(b) = 1))
    constraints

let solve ?(objective = []) t =
  let groups = List.rev t.groups in
  (* variables not in any group are independent binary decisions *)
  let grouped = Hashtbl.create 16 in
  List.iter (fun g -> List.iter (fun v -> Hashtbl.replace grouped v ()) g) groups;
  let free =
    List.filter
      (fun v -> not (Hashtbl.mem grouped v))
      (List.init t.count Fun.id)
  in
  let decision_sets = groups @ List.map (fun v -> [ v ]) free in
  let free_set = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace free_set v ()) free;
  let weight = Array.make (max 1 t.count) 0 in
  List.iter (fun (v, w) -> weight.(v) <- weight.(v) + w) objective;
  let assign = Array.make (max 1 t.count) (-1) in
  let best = ref None in
  let best_cost = ref max_int in
  let nodes = ref 0 in
  let budget = 10_000_000 in
  let rec search sets cost =
    incr nodes;
    if !nodes > budget then invalid_arg "Binprog.solve: search budget exceeded";
    if cost >= !best_cost then ()
    else
      match sets with
      | [] ->
          if check_partial t.constraints assign then begin
            best_cost := cost;
            best := Some (Array.copy assign)
          end
      | set :: rest ->
          let choices =
            (* a group picks exactly one member; a free variable may also
               be left at 0 *)
            if List.length set = 1 && Hashtbl.mem free_set (List.hd set) then
              [ None; Some (List.hd set) ]
            else List.map (fun v -> Some v) set
          in
          List.iter
            (fun choice ->
              List.iter (fun v -> assign.(v) <- 0) set;
              (match choice with Some v -> assign.(v) <- 1 | None -> ());
              if check_partial t.constraints assign then begin
                let added =
                  match choice with Some v -> weight.(v) | None -> 0
                in
                search rest (cost + added)
              end)
            choices;
          List.iter (fun v -> assign.(v) <- -1) set
  in
  search decision_sets 0;
  match !best with
  | Some a -> Some (fun v -> a.(v) = 1)
  | None -> None
