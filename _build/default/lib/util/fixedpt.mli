(** Signed fixed-point arithmetic on OCaml [int] bit patterns.

    A format [{ int_bits; frac_bits }] denotes a two's-complement signed
    number with [int_bits + frac_bits] total bits, scaled by [2^frac_bits].
    Both the behavioral interpreter and the RTL simulator use these exact
    semantics, so co-simulation can compare raw bit patterns.

    All results are wrapped to the format's width (hardware wraparound
    semantics), which is also what the paper's loop-counter recoding
    transformation relies on. *)

type format = { int_bits : int; frac_bits : int }

val format : int_bits:int -> frac_bits:int -> format
(** Build a format. Raises [Invalid_argument] if total bits is not in
    [1 .. 62]. *)

val bits : format -> int
(** Total bit width. *)

val wrap : format -> int -> int
(** Reduce an arbitrary integer to the format's signed range by
    truncating to [bits] bits and sign-extending. *)

val of_float : format -> float -> int
(** Nearest representable value (round to nearest, wrapped). *)

val to_float : format -> int -> float

val of_int : format -> int -> int
(** The integer [n] as a fixed-point pattern ([n * 2^frac_bits], wrapped). *)

val to_int : format -> int -> int
(** Truncate toward zero to an integer. *)

val add : format -> int -> int -> int
val sub : format -> int -> int -> int
val neg : format -> int -> int

val mul : format -> int -> int -> int
(** Full product rescaled by [2^frac_bits] (truncating), then wrapped. *)

val div : format -> int -> int -> int
(** Quotient scaled by [2^frac_bits] (truncating). Raises [Division_by_zero]
    when the divisor pattern is zero. *)

val shift_left : format -> int -> int -> int
val shift_right : format -> int -> int -> int
(** Arithmetic shifts by a non-negative constant, wrapped. *)

val eps : format -> float
(** Magnitude of one least-significant bit, [2^-frac_bits]. *)
