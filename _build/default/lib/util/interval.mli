(** Closed integer intervals, used for value lifetimes [birth, death].

    An interval [{ lo; hi }] with [lo <= hi] represents the control steps
    during which a value must be kept in storage. *)

type t = { lo : int; hi : int }

val make : int -> int -> t
(** [make lo hi]. Raises [Invalid_argument] if [lo > hi]. *)

val overlaps : t -> t -> bool
(** Whether the two closed intervals share at least one point. *)

val contains : t -> int -> bool

val merge : t -> t -> t
(** Smallest interval covering both. *)

val length : t -> int
(** Number of integer points, [hi - lo + 1]. *)

val compare_lo : t -> t -> int
(** Order by left endpoint, then right endpoint — the left-edge order. *)

val max_overlap : t list -> int
(** Maximum number of intervals simultaneously alive at any point — the
    lower bound (and left-edge-achieved optimum) on register count. Returns
    0 for the empty list. *)

val pp : Format.formatter -> t -> unit
