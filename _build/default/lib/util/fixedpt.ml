type format = { int_bits : int; frac_bits : int }

let format ~int_bits ~frac_bits =
  let total = int_bits + frac_bits in
  if int_bits < 0 || frac_bits < 0 || total < 1 || total > 62 then
    invalid_arg "Fixedpt.format: total bits must be in 1..62";
  { int_bits; frac_bits }

let bits f = f.int_bits + f.frac_bits

(* Truncate to [bits f] bits, then sign-extend from the top bit. *)
let wrap f v =
  let w = bits f in
  let mask = (1 lsl w) - 1 in
  let t = v land mask in
  let sign_bit = 1 lsl (w - 1) in
  if t land sign_bit <> 0 then t - (1 lsl w) else t

let scale f = 1 lsl f.frac_bits

let of_float f x =
  let scaled = x *. float_of_int (scale f) in
  wrap f (int_of_float (Float.round scaled))

let to_float f v = float_of_int v /. float_of_int (scale f)

let of_int f n = wrap f (n lsl f.frac_bits)

let to_int f v = v asr f.frac_bits

let add f a b = wrap f (a + b)
let sub f a b = wrap f (a - b)
let neg f a = wrap f (-a)

let mul f a b = wrap f ((a * b) asr f.frac_bits)

let div f a b =
  if b = 0 then raise Division_by_zero;
  wrap f (a lsl f.frac_bits / b)

let shift_left f a k =
  if k < 0 then invalid_arg "Fixedpt.shift_left: negative amount";
  wrap f (a lsl k)

let shift_right f a k =
  if k < 0 then invalid_arg "Fixedpt.shift_right: negative amount";
  wrap f (a asr k)

let eps f = 1.0 /. float_of_int (scale f)
