(** Cycle-accurate simulation of the synthesized RTL: state register,
    functional-unit activations, register loads and branch decisions,
    exactly as the datapath + controller would execute in hardware.

    With [~gate_level_control:true] the next state is computed by
    evaluating the synthesized (Quine–McCluskey-minimized) next-state
    logic instead of the abstract FSM — demonstrating that controller
    synthesis preserved behavior. *)

exception Sim_error of string

type result = {
  finals : (string * int) list;  (** register name → final pattern *)
  cycles : int;  (** clock cycles until DONE *)
}

val run :
  ?fuel:int ->
  ?gate_level_control:bool ->
  ?encoding:Hls_ctrl.Encoding.style ->
  ?on_cycle:(cycle:int -> state:int -> regs:(string * int) list -> unit) ->
  Hls_rtl.Datapath.t ->
  inputs:(string * int) list ->
  result
(** [inputs] preload the named registers (input ports). [fuel] bounds the
    cycle count (default 1_000_000). [encoding] selects the state
    encoding when [gate_level_control] is on (default binary).
    [on_cycle] observes every clock edge: the cycle number, the state
    entered, and the post-edge register values (sorted) — the hook used
    by {!Vcd} waveform dumping. *)
