open Hls_rtl

exception Sim_error of string

type result = { finals : (string * int) list; cycles : int }

let run ?(fuel = 1_000_000) ?(gate_level_control = false)
    ?(encoding = Hls_ctrl.Encoding.Binary) ?on_cycle (dp : Datapath.t) ~inputs =
  let regs : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (r : Datapath.reg_def) -> Hashtbl.replace regs r.Datapath.rname 0) dp.Datapath.regs;
  List.iter
    (fun (name, raw) ->
      if Hashtbl.mem regs name then Hashtbl.replace regs name raw
      else raise (Sim_error (Printf.sprintf "no input register %s" name)))
    inputs;
  let fsm = dp.Datapath.fsm in
  let ctrl =
    if gate_level_control then Some (Hls_ctrl.Ctrl_synth.synthesize ~style:encoding fsm)
    else None
  in
  let state = ref (Hls_ctrl.Fsm.entry fsm) in
  let cycles = ref 0 in
  let reg_read name =
    match Hashtbl.find_opt regs name with
    | Some x -> x
    | None -> raise (Sim_error (Printf.sprintf "read of missing register %s" name))
  in
  while !state <> Hls_ctrl.Fsm.done_state fsm do
    incr cycles;
    if !cycles > fuel then raise (Sim_error "out of fuel (controller may be stuck)");
    let s = !state in
    (* combinational phase: functional units *)
    let fu_out : (int, int) Hashtbl.t = Hashtbl.create 8 in
    let fu_read u =
      match Hashtbl.find_opt fu_out u with
      | Some x -> x
      | None -> raise (Sim_error (Printf.sprintf "combinational use of idle unit %d" u))
    in
    List.iter
      (fun (a : Datapath.activity) ->
        let argv = List.map (fun w -> Wire.eval w ~reg:reg_read ~fu:fu_read) a.Datapath.a_args in
        let v =
          try Hls_cdfg.Op.eval a.Datapath.a_ty a.Datapath.a_op argv
          with Division_by_zero -> raise (Sim_error "division by zero")
        in
        Hashtbl.replace fu_out a.Datapath.a_fu v)
      (Datapath.activities_in dp s);
    (* register loads evaluate against pre-edge register values *)
    let pending =
      List.map
        (fun (l : Datapath.load) ->
          (l.Datapath.l_reg, Wire.eval l.Datapath.l_wire ~reg:reg_read ~fu:fu_read))
        (Datapath.loads_in dp s)
    in
    (* branch decision *)
    let cond_value =
      match Datapath.cond_wire dp s with
      | Some w -> Some (Wire.eval w ~reg:reg_read ~fu:fu_read <> 0)
      | None -> None
    in
    let next =
      match ctrl with
      | Some c ->
          let conds =
            match (cond_value, Datapath.cond_wire dp s) with
            | Some v, Some _ -> (
                (* recover the (block, nid) key for this state's condition *)
                match
                  List.find_opt
                    (fun (tr : Hls_ctrl.Fsm.transition) -> tr.Hls_ctrl.Fsm.t_from = s)
                    (List.filter
                       (fun (tr : Hls_ctrl.Fsm.transition) ->
                         match tr.Hls_ctrl.Fsm.t_guard with
                         | Hls_ctrl.Fsm.G_cond _ -> true
                         | Hls_ctrl.Fsm.G_always -> false)
                       (Hls_ctrl.Fsm.transitions fsm))
                with
                | Some { Hls_ctrl.Fsm.t_guard = Hls_ctrl.Fsm.G_cond (_, nid); _ } ->
                    let st =
                      List.find
                        (fun (x : Hls_ctrl.Fsm.state) -> x.Hls_ctrl.Fsm.sid = s)
                        (Hls_ctrl.Fsm.states fsm)
                    in
                    [ ((st.Hls_ctrl.Fsm.block, nid), v) ]
                | _ -> [])
            | _ -> []
          in
          Hls_ctrl.Ctrl_synth.next_state c ~state:s ~conds
      | None -> (
          let taken =
            List.find_opt
              (fun (tr : Hls_ctrl.Fsm.transition) ->
                match tr.Hls_ctrl.Fsm.t_guard with
                | Hls_ctrl.Fsm.G_always -> true
                | Hls_ctrl.Fsm.G_cond (pol, _) -> (
                    match cond_value with
                    | Some v -> v = pol
                    | None -> raise (Sim_error "branch without condition wire")))
              (Hls_ctrl.Fsm.outgoing fsm s)
          in
          match taken with
          | Some tr -> tr.Hls_ctrl.Fsm.t_to
          | None -> raise (Sim_error (Printf.sprintf "state %d has no enabled transition" s)))
    in
    (* clock edge: commit loads and the state register together *)
    List.iter (fun (r, v) -> Hashtbl.replace regs r v) pending;
    state := next;
    (match on_cycle with
    | Some f ->
        f ~cycle:!cycles ~state:!state
          ~regs:(Hashtbl.fold (fun r v acc -> (r, v) :: acc) regs [] |> List.sort compare)
    | None -> ())
  done;
  let finals = Hashtbl.fold (fun r v acc -> (r, v) :: acc) regs [] |> List.sort compare in
  { finals; cycles = !cycles }
