(** Interpreter for the compiled CDFG: executes blocks (data-flow values
    in node order, variable writes committed at block exit) and follows
    terminators. Bit-identical to {!Beh_sim} on compiled programs — the
    oracle that validates compilation and every optimization pass. *)

exception Sim_error of string

val run :
  ?fuel:int -> Hls_cdfg.Cfg.t -> inputs:(string * int) list -> (string * int) list
(** Returns every variable with its final pattern, sorted. [fuel] bounds
    executed blocks (default 1_000_000). *)

val trace :
  ?fuel:int -> Hls_cdfg.Cfg.t -> inputs:(string * int) list ->
  (string * int) list * Hls_cdfg.Cfg.bid list
(** Like {!run}, also returning the block execution sequence. *)
