open Hls_util
open Hls_lang
open Hls_lang.Typed

exception Sim_error of string

let fmt_of_ty (ty : Ast.ty) =
  match ty with
  | Ast.Tbool -> Fixedpt.format ~int_bits:1 ~frac_bits:0
  | Ast.Tint w -> Fixedpt.format ~int_bits:w ~frac_bits:0
  | Ast.Tfix (i, f) -> Fixedpt.format ~int_bits:i ~frac_bits:f

let to_raw ty x = Fixedpt.of_float (fmt_of_ty ty) x
let of_raw ty v = Fixedpt.to_float (fmt_of_ty ty) v

let output_ports (p : tprogram) =
  List.filter_map
    (fun (port : Ast.port) ->
      if port.Ast.pdir = Ast.Output then Some (port.Ast.pname, port.Ast.pty) else None)
    p.tports

let run ?(fuel = 1_000_000) (p : tprogram) ~inputs =
  let env : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (v, ty) -> Hashtbl.replace env v (match List.assoc_opt v inputs with
      | Some raw -> Fixedpt.wrap (fmt_of_ty ty) raw
      | None -> 0))
    (Typed.all_vars p);
  let fuel = ref fuel in
  let spend () =
    decr fuel;
    if !fuel < 0 then raise (Sim_error "out of fuel (possible non-terminating loop)")
  in
  let rec eval (e : texpr) =
    match e.te with
    | TEint n -> (
        match e.ty with
        | Ast.Tfix _ -> Fixedpt.of_int (fmt_of_ty e.ty) n
        | Ast.Tint _ | Ast.Tbool -> Fixedpt.wrap (fmt_of_ty e.ty) n)
    | TEreal x -> Fixedpt.of_float (fmt_of_ty e.ty) x
    | TEbool b -> if b then 1 else 0
    | TEvar v -> Hashtbl.find env v
    | TEbin (op, a, b) -> (
        let va = eval a and vb = eval b in
        try Hls_cdfg.Op.eval e.ty (Hls_cdfg.Op.of_binop op) [ va; vb ]
        with Division_by_zero -> raise (Sim_error "division by zero"))
    | TEun (Ast.Neg, a) -> Hls_cdfg.Op.eval e.ty Hls_cdfg.Op.Neg [ eval a ]
    | TEun (Ast.Not, a) -> Hls_cdfg.Op.eval e.ty Hls_cdfg.Op.Not [ eval a ]
  in
  let assign v value =
    let ty = Typed.var_ty p v in
    Hashtbl.replace env v (Fixedpt.wrap (fmt_of_ty ty) value)
  in
  let truthy e = eval e <> 0 in
  let rec exec st =
    spend ();
    match st with
    | TSassign (v, rhs) -> assign v (eval rhs)
    | TSif (c, then_, else_) -> List.iter exec (if truthy c then then_ else else_)
    | TSwhile (c, body) ->
        while truthy c do
          spend ();
          List.iter exec body
        done
    | TSrepeat (body, c) ->
        let continue_ = ref true in
        while !continue_ do
          spend ();
          List.iter exec body;
          if truthy c then continue_ := false
        done
    | TSfor (v, from_, to_, body) ->
        assign v (eval from_);
        let limit = eval to_ in
        while Hashtbl.find env v <= limit do
          spend ();
          List.iter exec body;
          assign v (Hashtbl.find env v + 1)
        done
  in
  List.iter exec p.tbody;
  Hashtbl.fold (fun v value acc -> (v, value) :: acc) env [] |> List.sort compare
