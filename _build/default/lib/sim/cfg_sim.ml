open Hls_cdfg

exception Sim_error of string

let trace ?(fuel = 1_000_000) cfg ~inputs =
  let store : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (v, raw) -> Hashtbl.replace store v raw) inputs;
  let read_var v = match Hashtbl.find_opt store v with Some x -> x | None -> 0 in
  let fuel = ref fuel in
  let visited = ref [] in
  let rec exec_block bid =
    decr fuel;
    if !fuel < 0 then raise (Sim_error "out of fuel (possible non-terminating loop)");
    visited := bid :: !visited;
    let g = Cfg.dfg cfg bid in
    let n = Dfg.n_nodes g in
    let values = Array.make n 0 in
    let pending_writes = ref [] in
    Dfg.iter
      (fun id node ->
        let argv = List.map (fun a -> values.(a)) node.Dfg.args in
        match node.Dfg.op with
        | Op.Read v -> values.(id) <- read_var v
        | Op.Write v ->
            (match argv with
            | [ x ] -> pending_writes := (v, x, node.Dfg.ty) :: !pending_writes
            | _ -> raise (Sim_error "malformed write"));
            values.(id) <- (match argv with x :: _ -> x | [] -> 0)
        | op -> (
            try values.(id) <- Op.eval node.Dfg.ty op argv
            with Division_by_zero -> raise (Sim_error "division by zero")))
      g;
    (* commit writes at block exit; later writes win *)
    List.iter
      (fun (v, x, ty) ->
        ignore ty;
        Hashtbl.replace store v x)
      (List.rev !pending_writes);
    match Cfg.term cfg bid with
    | Cfg.Goto next -> exec_block next
    | Cfg.Branch (c, bt, bf) -> exec_block (if values.(c) <> 0 then bt else bf)
    | Cfg.Halt -> ()
  in
  exec_block (Cfg.entry cfg);
  let finals = Hashtbl.fold (fun v x acc -> (v, x) :: acc) store [] |> List.sort compare in
  (finals, List.rev !visited)

let run ?fuel cfg ~inputs = fst (trace ?fuel cfg ~inputs)
