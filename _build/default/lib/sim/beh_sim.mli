(** Reference interpreter for the behavioral specification (typed AST).

    Values are raw bit patterns with the bit-exact fixed-point semantics
    of {!Hls_cdfg.Op.eval}, so results are directly comparable with the
    CDFG interpreter and the RTL simulator — the basis of the
    verification experiment ("the proof that a detailed design implements
    the exact design stated in the specification"). *)

open Hls_lang

exception Sim_error of string

val run :
  ?fuel:int -> Typed.tprogram -> inputs:(string * int) list -> (string * int) list
(** Execute with the given raw input-port patterns (missing inputs read
    0); returns every port and variable with its final pattern. [fuel]
    bounds loop iterations (default 1_000_000); exceeding it raises
    {!Sim_error}, as does division by zero. *)

val output_ports : Typed.tprogram -> (string * Ast.ty) list

val to_raw : Ast.ty -> float -> int
val of_raw : Ast.ty -> int -> float
(** Convenience conversions for tests and examples. *)
