lib/sim/rtl_sim.mli: Hls_ctrl Hls_rtl
