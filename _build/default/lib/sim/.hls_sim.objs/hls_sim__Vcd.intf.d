lib/sim/vcd.mli: Hls_rtl Rtl_sim
