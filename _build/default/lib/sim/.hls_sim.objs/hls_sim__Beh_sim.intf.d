lib/sim/beh_sim.mli: Ast Hls_lang Typed
