lib/sim/cfg_sim.mli: Hls_cdfg
