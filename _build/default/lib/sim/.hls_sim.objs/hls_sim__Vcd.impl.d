lib/sim/vcd.ml: Buffer Bytes Char Datapath Hashtbl Hls_ctrl Hls_rtl List Printf Rtl_sim String
