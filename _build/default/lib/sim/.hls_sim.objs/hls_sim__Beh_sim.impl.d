lib/sim/beh_sim.ml: Ast Fixedpt Hashtbl Hls_cdfg Hls_lang Hls_util List Typed
