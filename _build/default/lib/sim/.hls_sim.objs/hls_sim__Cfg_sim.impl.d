lib/sim/cfg_sim.ml: Array Cfg Dfg Hashtbl Hls_cdfg List Op
