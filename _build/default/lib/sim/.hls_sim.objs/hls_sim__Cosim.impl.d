lib/sim/cosim.ml: Ast Beh_sim Cfg_sim Fixedpt Hls_cdfg Hls_lang Hls_rtl Hls_util List Printf Random Rtl_sim String Typed
