lib/sim/cosim.mli: Hls_cdfg Hls_lang Hls_rtl Typed
