lib/sim/rtl_sim.ml: Datapath Hashtbl Hls_cdfg Hls_ctrl Hls_rtl List Printf Wire
