(* Simulation tests: the behavioral interpreter's semantics, behavioral =
   CDFG equivalence on random programs, RTL cycle accounting, and full
   three-level co-simulation of every workload (the design-verification
   experiment). *)

open Hls_lang
open Hls_core
open Hls_sim

let fix824 = Ast.Tfix (8, 24)

(* ---- behavioral interpreter ---- *)

let run_src src inputs =
  Beh_sim.run (Typecheck.check (Parser.parse src)) ~inputs

let test_beh_sqrt_accuracy () =
  List.iter
    (fun x ->
      let out = run_src Workloads.sqrt_newton [ ("x", Beh_sim.to_raw fix824 x) ] in
      let y = Beh_sim.of_raw fix824 (List.assoc "y" out) in
      Alcotest.(check bool)
        (Printf.sprintf "sqrt %f: %f vs %f" x y (sqrt x))
        true
        (abs_float (y -. sqrt x) < 1e-4))
    [ 0.0625; 0.1; 0.25; 0.5; 0.9; 1.0 ]

let test_beh_gcd () =
  List.iter
    (fun (a, b, g) ->
      let out = run_src Workloads.gcd [ ("a_in", a); ("b_in", b) ] in
      Alcotest.(check int) (Printf.sprintf "gcd %d %d" a b) g (List.assoc "g" out))
    [ (12, 18, 6); (7, 7, 7); (35, 14, 7); (100, 75, 25); (17, 5, 1) ]

let test_beh_wrap_semantics () =
  let out =
    run_src "module m(input a: int<4>; output y: int<4>); begin y := a + 1; end"
      [ ("a", 7) ]
  in
  Alcotest.(check int) "int<4> overflow wraps" (-8) (List.assoc "y" out)

let test_beh_division_by_zero () =
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (run_src "module m(input a: int<8>; output y: int<8>); begin y := 1 / a; end"
            [ ("a", 0) ]);
       false
     with Beh_sim.Sim_error _ -> true)

let test_beh_fuel () =
  Alcotest.(check bool) "non-terminating loop trapped" true
    (try
       ignore
         (Beh_sim.run ~fuel:1000
            (Typecheck.check
               (Parser.parse
                  "module m(output y: int<8>); begin y := 0; while y = 0 do y := 0; end; end"))
            ~inputs:[]);
       false
     with Beh_sim.Sim_error _ -> true)

let test_beh_for_loop () =
  let out =
    run_src
      "module m(output y: int<16>); var i: int<8>; begin y := 0; for i := 1 to 10 do y := y + i; end; end"
      []
  in
  Alcotest.(check int) "sum 1..10" 55 (List.assoc "y" out)

(* ---- behavioral = CDFG ---- *)

let prop_beh_cfg_agree =
  QCheck.Test.make ~name:"behavioral and CDFG interpreters agree" ~count:200
    Gen.program_arbitrary
    (fun seed ->
      let prog = Typecheck.check (Gen.program_of_seed seed) in
      let cfg = Hls_cdfg.Compile.compile prog in
      let rng = Random.State.make [| seed * 3 |] in
      List.for_all
        (fun _ ->
          let inputs =
            [ ("a", Random.State.int rng 500); ("b", Random.State.int rng 500) ]
          in
          let r1 = Beh_sim.run prog ~inputs in
          let r2 = Cfg_sim.run cfg ~inputs in
          List.for_all
            (fun p -> List.assoc_opt p r1 = List.assoc_opt p r2)
            [ "o1"; "o2" ])
        [ 1; 2; 3 ])

(* ---- RTL cycle accounting ---- *)

let test_rtl_cycles_sqrt () =
  let d = Flow.synthesize Workloads.sqrt_newton in
  let r = Rtl_sim.run d.Flow.datapath ~inputs:[ ("x", Beh_sim.to_raw fix824 0.5) ] in
  (* 10 compute steps + 1 exit state *)
  Alcotest.(check int) "cycles" 11 r.Rtl_sim.cycles

let test_rtl_trace_matches_schedule () =
  let d = Flow.synthesize Workloads.fir8 in
  let r = Rtl_sim.run d.Flow.datapath ~inputs:[ ("x0", 100) ] in
  Alcotest.(check int) "straight-line cycles = FSM states"
    (Hls_sched.Cfg_sched.total_states d.Flow.sched)
    r.Rtl_sim.cycles

(* ---- VCD waveforms ---- *)

let test_vcd_dump () =
  let d = Flow.synthesize Workloads.sqrt_newton in
  let text =
    Vcd.dump d.Flow.datapath ~inputs:[ ("x", Beh_sim.to_raw fix824 0.25) ]
  in
  let contains needle =
    let lh = String.length text and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub text i ln = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun fragment -> Alcotest.(check bool) fragment true (contains fragment))
    [ "$timescale"; "$enddefinitions"; "$dumpvars"; " state $end"; " y $end"; "#11" ];
  (* every non-empty line is well-formed: directive, timestamp, or a
     binary value change *)
  List.iter
    (fun line ->
      if line <> "" then
        Alcotest.(check bool)
          (Printf.sprintf "line %S" line)
          true
          (line.[0] = '$' || line.[0] = '#' || line.[0] = 'b'))
    (String.split_on_char '
' text)

(* ---- cosim: the verification experiment ---- *)

let test_cosim_all_workloads () =
  List.iter
    (fun (name, src) ->
      let d = Flow.synthesize src in
      match Cosim.check_random ~runs:8 (Flow.cosim_design d) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" name e)
    Workloads.all

let test_cosim_gate_level () =
  List.iter
    (fun name ->
      let d = Flow.synthesize (Workloads.find name) in
      match Cosim.check_random ~runs:4 ~gate_level_control:true (Flow.cosim_design d) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s (gate level): %s" name e)
    [ "sqrt"; "gcd"; "fir8" ]

let test_cosim_detects_mismatch () =
  (* simulate against the wrong datapath: must be flagged *)
  let d1 = Flow.synthesize Workloads.sqrt_newton in
  let d2 =
    Flow.synthesize
      "module sqrt(input x: fix<8,24>; output y: fix<8,24>); begin y := x; end"
  in
  let franken =
    { (Flow.cosim_design d1) with Cosim.d_datapath = d2.Flow.datapath }
  in
  match Cosim.check franken ~inputs:[ ("x", Beh_sim.to_raw fix824 0.5) ] with
  | Ok _ -> Alcotest.fail "mismatch not detected"
  | Error e -> Alcotest.(check bool) "names the output" true (String.length e > 0)

let prop_random_programs_synthesize_and_cosim =
  QCheck.Test.make ~name:"random programs synthesize and co-simulate" ~count:40
    Gen.program_arbitrary
    (fun seed ->
      let prog = Gen.program_of_seed seed in
      let d = Flow.synthesize_program prog in
      match Cosim.check_random ~runs:3 ~seed (Flow.cosim_design d) with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_reportf "%s" e)

let () =
  Alcotest.run "sim"
    [
      ( "behavioral",
        [
          Alcotest.test_case "sqrt accuracy" `Quick test_beh_sqrt_accuracy;
          Alcotest.test_case "gcd" `Quick test_beh_gcd;
          Alcotest.test_case "wraparound" `Quick test_beh_wrap_semantics;
          Alcotest.test_case "division by zero" `Quick test_beh_division_by_zero;
          Alcotest.test_case "fuel" `Quick test_beh_fuel;
          Alcotest.test_case "for loop" `Quick test_beh_for_loop;
        ] );
      ("cdfg", [ QCheck_alcotest.to_alcotest prop_beh_cfg_agree ]);
      ( "rtl",
        [
          Alcotest.test_case "sqrt cycle count" `Quick test_rtl_cycles_sqrt;
          Alcotest.test_case "cycles = states (straight line)" `Quick test_rtl_trace_matches_schedule;
        ] );
      ("vcd", [ Alcotest.test_case "dump" `Quick test_vcd_dump ]);
      ( "cosim",
        [
          Alcotest.test_case "all workloads" `Slow test_cosim_all_workloads;
          Alcotest.test_case "gate-level control" `Quick test_cosim_gate_level;
          Alcotest.test_case "detects mismatch" `Quick test_cosim_detects_mismatch;
          QCheck_alcotest.to_alcotest prop_random_programs_synthesize_and_cosim;
        ] );
    ]
