(* RTL tests: component library and module binding, datapath
   construction with netlist checks, wires, structural emission, and
   area/latency estimation trends. *)

open Hls_cdfg
open Hls_core
open Hls_rtl

(* ---- component binding ---- *)

let test_bind_cheapest () =
  let c = Component.bind ~cls:Op.C_alu ~ops:[ Op.Add; Op.Sub; Op.Incr ] in
  Alcotest.(check string) "add_sub suffices" "add_sub" c.Component.cname;
  let c2 = Component.bind ~cls:Op.C_alu ~ops:[ Op.Add; Op.And ] in
  Alcotest.(check string) "logic needs full alu" "alu" c2.Component.cname;
  let c3 = Component.bind ~cls:Op.C_mul ~ops:[ Op.Mul ] in
  Alcotest.(check string) "multiplier" "mult" c3.Component.cname;
  let c4 = Component.bind ~cls:Op.C_div ~ops:[ Op.Div; Op.Mod ] in
  Alcotest.(check string) "divider" "divider" c4.Component.cname

let test_bind_failure () =
  Alcotest.(check bool) "mul on alu fails" true
    (try
       ignore (Component.bind ~cls:Op.C_alu ~ops:[ Op.Mul ]);
       false
     with Not_found -> true)

let test_area_scales_with_width () =
  let c = Component.find "mult" in
  Alcotest.(check bool) "wider is bigger" true
    (Component.area c ~width:32 > Component.area c ~width:8)

(* ---- wires ---- *)

let test_wire_eval () =
  let ty = Hls_lang.Ast.Tint 8 in
  let w =
    Wire.W_mux
      ( Wire.W_zdetect (Wire.W_reg "a"),
        Wire.W_shl (Wire.W_const (3, ty), 1, ty),
        Wire.W_reg "b",
        ty )
  in
  let reg = function "a" -> 0 | "b" -> 9 | _ -> assert false in
  let fu _ = assert false in
  Alcotest.(check int) "mux true path" 6 (Wire.eval w ~reg ~fu);
  let reg2 = function "a" -> 5 | "b" -> 9 | _ -> assert false in
  Alcotest.(check int) "mux false path" 9 (Wire.eval w ~reg:reg2 ~fu);
  Alcotest.(check (list string)) "regs read" [ "a"; "b" ] (Wire.regs_read w);
  Alcotest.(check bool) "mux adds delay" true (Wire.depth_delay_ns w > 0.0)

(* ---- datapath + checks on every workload ---- *)

let test_all_workloads_check () =
  List.iter
    (fun (name, src) ->
      let d = Flow.synthesize src in
      match Check.run d.Flow.datapath with
      | Ok () -> ()
      | Error es -> Alcotest.failf "%s: %s" name (String.concat "; " es))
    Workloads.all

let test_check_catches_double_booking () =
  (* force two ops of the same class into one step with a 1-unit clique
     allocation — impossible, so fabricate the defect directly *)
  let d = Flow.synthesize Workloads.sqrt_newton in
  let dp = d.Flow.datapath in
  match dp.Datapath.activities with
  | a :: rest ->
      let clash = { a with Datapath.a_state = (List.hd rest).Datapath.a_state; a_fu = (List.hd rest).Datapath.a_fu } in
      let broken = { dp with Datapath.activities = clash :: (List.hd rest) :: List.tl rest @ [ a ] } in
      (match Check.run broken with
      | Ok () -> Alcotest.fail "double booking not caught"
      | Error _ -> ())
  | [] -> Alcotest.fail "no activities"

(* ---- emission ---- *)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_emit_verilog () =
  let d = Flow.synthesize Workloads.sqrt_newton in
  let v = Emit.verilog ~name:"sqrt" d.Flow.datapath in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) fragment true (contains v fragment))
    [ "module sqrt"; "endmodule"; "case (state)"; "posedge clk"; "assign done" ]

let test_emit_dot () =
  let d = Flow.synthesize Workloads.gcd in
  let dot = Emit.dot d.Flow.datapath in
  Alcotest.(check bool) "digraph" true (contains dot "digraph");
  Alcotest.(check bool) "has register node" true (contains dot "reg_")

(* ---- estimation ---- *)

let test_estimate_trends () =
  let opts limits = { Flow.default_options with Flow.limits } in
  let serial = Flow.synthesize ~options:(opts Hls_sched.Limits.Serial) Workloads.sqrt_newton in
  let two = Flow.synthesize ~options:(opts Hls_sched.Limits.two_fu) Workloads.sqrt_newton in
  Alcotest.(check bool) "two FUs faster" true
    (two.Flow.estimate.Estimate.latency_ns < serial.Flow.estimate.Estimate.latency_ns);
  List.iter
    (fun (d : Flow.design) ->
      let e = d.Flow.estimate in
      Alcotest.(check bool) "areas positive" true
        (e.Estimate.fu_area > 0 && e.Estimate.reg_area > 0 && e.Estimate.ctrl_area > 0);
      Alcotest.(check int) "total is the sum"
        (e.Estimate.fu_area + e.Estimate.reg_area + e.Estimate.mux_area + e.Estimate.ctrl_area)
        e.Estimate.total_area;
      Alcotest.(check bool) "cycle covers a unit delay" true (e.Estimate.cycle_ns > 10.0))
    [ serial; two ]

let test_estimate_row () =
  let d = Flow.synthesize Workloads.gcd in
  Alcotest.(check int) "row arity" 4 (List.length (Estimate.to_row d.Flow.estimate))

let () =
  Alcotest.run "rtl"
    [
      ( "component",
        [
          Alcotest.test_case "bind cheapest" `Quick test_bind_cheapest;
          Alcotest.test_case "bind failure" `Quick test_bind_failure;
          Alcotest.test_case "area scaling" `Quick test_area_scales_with_width;
        ] );
      ("wire", [ Alcotest.test_case "eval" `Quick test_wire_eval ]);
      ( "datapath",
        [
          Alcotest.test_case "all workloads pass checks" `Quick test_all_workloads_check;
          Alcotest.test_case "lint catches double booking" `Quick test_check_catches_double_booking;
        ] );
      ( "emit",
        [
          Alcotest.test_case "verilog" `Quick test_emit_verilog;
          Alcotest.test_case "dot" `Quick test_emit_dot;
        ] );
      ( "estimate",
        [
          Alcotest.test_case "trends" `Quick test_estimate_trends;
          Alcotest.test_case "report row" `Quick test_estimate_row;
        ] );
    ]
