test/test_rtl.ml: Alcotest Check Component Datapath Emit Estimate Flow Hls_cdfg Hls_core Hls_lang Hls_rtl Hls_sched List Op String Wire Workloads
