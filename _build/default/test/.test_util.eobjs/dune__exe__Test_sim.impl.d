test/test_sim.ml: Alcotest Ast Beh_sim Cfg_sim Cosim Flow Gen Hls_cdfg Hls_core Hls_lang Hls_sched Hls_sim List Parser Printf QCheck QCheck_alcotest Random Rtl_sim String Typecheck Vcd Workloads
