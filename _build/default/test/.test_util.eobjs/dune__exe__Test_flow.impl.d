test/test_flow.ml: Alcotest Explore Flow Hls_core Hls_lang Hls_rtl Hls_sched Limits List Report String Workloads
