test/test_lang.ml: Alcotest Ast Gen Hls_core Hls_lang Hls_sim Inline Lexer List Parser Pretty QCheck QCheck_alcotest String Typecheck Typed
