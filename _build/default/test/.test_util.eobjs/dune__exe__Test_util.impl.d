test/test_util.ml: Alcotest Array Binprog Dot Fixedpt Fun Gen Hls_util Interval List Pqueue Printf QCheck QCheck_alcotest String Table Union_find Vec
