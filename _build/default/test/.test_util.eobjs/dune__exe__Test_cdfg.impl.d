test/test_cdfg.ml: Alcotest Array Ast Cfg Compile Dfg Gen Graph_algo Hls_cdfg Hls_core Hls_lang List Liveness Op Printf QCheck QCheck_alcotest Typecheck
