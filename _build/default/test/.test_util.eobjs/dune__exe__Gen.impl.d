test/gen.ml: Ast Builder Hls_cdfg Hls_lang Hls_util List Pretty Printf QCheck Random
