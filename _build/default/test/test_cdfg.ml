(* Tests for the CDFG layer: operator evaluation, DFG invariants, graph
   algorithms, AST→CDFG compilation (Fig 1) and liveness. *)

open Hls_lang
open Hls_cdfg

let i8 = Ast.Tint 8
let fix44 = Ast.Tfix (4, 4)

(* ---- Op.eval ---- *)

let test_op_eval_int () =
  Alcotest.(check int) "add wrap" (-128) (Op.eval i8 Op.Add [ 127; 1 ]);
  Alcotest.(check int) "sub" 3 (Op.eval i8 Op.Sub [ 5; 2 ]);
  Alcotest.(check int) "mul" 20 (Op.eval i8 Op.Mul [ 4; 5 ]);
  Alcotest.(check int) "div trunc" (-2) (Op.eval i8 Op.Div [ -5; 2 ]);
  Alcotest.(check int) "mod" 1 (Op.eval i8 Op.Mod [ 5; 2 ]);
  Alcotest.(check int) "incr" 6 (Op.eval i8 Op.Incr [ 5 ]);
  Alcotest.(check int) "decr" 4 (Op.eval i8 Op.Decr [ 5 ]);
  Alcotest.(check int) "neg" (-5) (Op.eval i8 Op.Neg [ 5 ]);
  Alcotest.(check int) "shl" 8 (Op.eval i8 Op.Shl [ 2; 2 ]);
  Alcotest.(check int) "shr arith" (-2) (Op.eval i8 Op.Shr [ -3; 1 ]);
  Alcotest.(check int) "and" 4 (Op.eval i8 Op.And [ 6; 12 ]);
  Alcotest.(check int) "xor" 10 (Op.eval i8 Op.Xor [ 6; 12 ]);
  Alcotest.(check int) "zdetect yes" 1 (Op.eval Ast.Tbool Op.Zdetect [ 0 ]);
  Alcotest.(check int) "zdetect no" 0 (Op.eval Ast.Tbool Op.Zdetect [ 3 ]);
  Alcotest.(check int) "mux true" 7 (Op.eval i8 Op.Mux [ 1; 7; 9 ]);
  Alcotest.(check int) "mux false" 9 (Op.eval i8 Op.Mux [ 0; 7; 9 ])

let test_op_eval_cmp () =
  List.iter
    (fun (c, a, b, expected) ->
      Alcotest.(check int)
        (Printf.sprintf "cmp %d %d" a b)
        expected
        (Op.eval Ast.Tbool (Op.Cmp c) [ a; b ]))
    [
      (Op.Ceq, 3, 3, 1); (Op.Ceq, 3, 4, 0); (Op.Cne, 3, 4, 1); (Op.Clt, -1, 0, 1);
      (Op.Cle, 2, 2, 1); (Op.Cgt, 5, 4, 1); (Op.Cge, 4, 5, 0);
    ]

let test_op_eval_fix () =
  (* 1.5 * 2.0 in fix<4,4>: patterns 24 and 32 -> 48 (3.0) *)
  Alcotest.(check int) "fix mul" 48 (Op.eval fix44 Op.Mul [ 24; 32 ]);
  (* 1.0 / 2.0 = 0.5 -> pattern 8 *)
  Alcotest.(check int) "fix div" 8 (Op.eval fix44 Op.Div [ 16; 32 ]);
  (* incr adds 1.0 = pattern 16 *)
  Alcotest.(check int) "fix incr" 40 (Op.eval fix44 Op.Incr [ 24 ])

let test_op_arity_errors () =
  Alcotest.(check bool) "arity" true
    (try
       ignore (Op.eval i8 Op.Add [ 1 ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "div0" true
    (try
       ignore (Op.eval i8 Op.Div [ 1; 0 ]);
       false
     with Division_by_zero -> true)

(* ---- Dfg ---- *)

let test_dfg_invariants () =
  let g = Dfg.create () in
  let a = Dfg.add g (Op.Read "a") [] i8 in
  let b = Dfg.add g (Op.Const 3) [] i8 in
  let s = Dfg.add g Op.Add [ a; b ] i8 in
  let _w = Dfg.add g (Op.Write "y") [ s ] i8 in
  Alcotest.(check int) "nodes" 4 (Dfg.n_nodes g);
  Alcotest.(check (list int)) "users of a" [ s ] (Dfg.users g).(a);
  (* forward reference rejected *)
  Alcotest.(check bool) "forward ref" true
    (try
       ignore (Dfg.add g Op.Add [ 99; a ] i8);
       false
     with Invalid_argument _ -> true);
  (* arity mismatch rejected *)
  Alcotest.(check bool) "arity" true
    (try
       ignore (Dfg.add g Op.Add [ a ] i8);
       false
     with Invalid_argument _ -> true)

let test_dfg_classes () =
  let g = Dfg.create () in
  let x = Dfg.add g (Op.Read "x") [] fix44 in
  let k = Dfg.add g (Op.Const 1) [] (Ast.Tint 6) in
  let sh = Dfg.add g Op.Shr [ x; k ] fix44 in
  let amt = Dfg.add g (Op.Read "n") [] (Ast.Tint 6) in
  let shv = Dfg.add g Op.Shr [ x; amt ] fix44 in
  let c0 = Dfg.add g (Op.Const 0) [] i8 in
  let wmove = Dfg.add g (Op.Write "i") [ c0 ] i8 in
  let add = Dfg.add g Op.Add [ sh; sh ] fix44 in
  let wcomp = Dfg.add g (Op.Write "y") [ add ] fix44 in
  Alcotest.(check string) "const shift free" "free"
    (Op.fu_class_to_string (Dfg.fu_class_of g sh));
  Alcotest.(check string) "variable shift occupies" "shift"
    (Op.fu_class_to_string (Dfg.fu_class_of g shv));
  Alcotest.(check string) "write-move is alu" "alu"
    (Op.fu_class_to_string (Dfg.fu_class_of g wmove));
  Alcotest.(check string) "computed write free" "none"
    (Op.fu_class_to_string (Dfg.fu_class_of g wcomp));
  Alcotest.(check (list int)) "compute ops" [ shv; wmove; add ] (Dfg.compute_ops g)

let test_dfg_path_length () =
  (* chain: a -> add1 -> add2 -> write; path counted in occupying ops *)
  let g = Dfg.create () in
  let a = Dfg.add g (Op.Read "a") [] i8 in
  let x = Dfg.add g Op.Add [ a; a ] i8 in
  let y = Dfg.add g Op.Add [ x; a ] i8 in
  let _ = Dfg.add g (Op.Write "y") [ y ] i8 in
  let pl = Dfg.path_length g in
  Alcotest.(check int) "pl x" 2 pl.(x);
  Alcotest.(check int) "pl y" 1 pl.(y);
  let d = Dfg.depth g in
  Alcotest.(check int) "depth x" 1 d.(x);
  Alcotest.(check int) "depth y" 2 d.(y)

(* ---- Graph_algo ---- *)

let diamond = [| [ 1; 2 ]; [ 3 ]; [ 3 ]; [] |]

let test_topo_sort () =
  (match Graph_algo.topo_sort ~succs:diamond with
  | Some order ->
      let pos = Array.make 4 0 in
      List.iteri (fun i v -> pos.(v) <- i) order;
      Alcotest.(check bool) "0 before 3" true (pos.(0) < pos.(3));
      Alcotest.(check bool) "1 before 3" true (pos.(1) < pos.(3))
  | None -> Alcotest.fail "diamond is acyclic");
  match Graph_algo.topo_sort ~succs:[| [ 1 ]; [ 0 ] |] with
  | None -> ()
  | Some _ -> Alcotest.fail "cycle must be detected"

let test_dominators_and_loops () =
  (* 0 -> 1 -> 2 -> 1 (back edge), 2 -> 3 *)
  let succs = [| [ 1 ]; [ 2 ]; [ 1; 3 ]; [] |] in
  let idom = Graph_algo.dominators ~succs ~entry:0 in
  Alcotest.(check int) "idom 1" 0 idom.(1);
  Alcotest.(check int) "idom 2" 1 idom.(2);
  Alcotest.(check int) "idom 3" 2 idom.(3);
  Alcotest.(check bool) "1 dom 3" true (Graph_algo.dominates ~idom 1 3);
  Alcotest.(check bool) "3 not dom 1" false (Graph_algo.dominates ~idom 3 1);
  Alcotest.(check (list (pair int int))) "back edges" [ (2, 1) ]
    (Graph_algo.back_edges ~succs ~entry:0);
  match Graph_algo.loops ~succs ~entry:0 with
  | [ (1, members) ] -> Alcotest.(check (list int)) "loop members" [ 1; 2 ] members
  | _ -> Alcotest.fail "one loop expected"

let test_longest_path () =
  let lp = Graph_algo.longest_path ~succs:diamond ~weight:(fun _ -> 1) in
  Alcotest.(check int) "source" 3 lp.(0);
  Alcotest.(check int) "sink" 1 lp.(3)

(* ---- Compile (Fig 1) ---- *)

let sqrt_cfg () =
  let _, cfg = Compile.compile_source Hls_core.Workloads.sqrt_newton in
  cfg

let test_compile_sqrt_structure () =
  let cfg = sqrt_cfg () in
  Alcotest.(check int) "blocks" 3 (Cfg.n_blocks cfg);
  (* paper: 3 prologue operations, 5 loop-body operations *)
  Alcotest.(check int) "prologue ops" 3 (List.length (Dfg.compute_ops (Cfg.dfg cfg 0)));
  Alcotest.(check int) "body ops" 5 (List.length (Dfg.compute_ops (Cfg.dfg cfg 1)));
  Alcotest.(check (option int)) "trip count" (Some 4) (Cfg.trip_count cfg 1);
  Alcotest.(check int) "body freq" 4 (Cfg.exec_frequency cfg 1);
  Alcotest.(check int) "prologue freq" 1 (Cfg.exec_frequency cfg 0)

let test_compile_if_else () =
  let _, cfg =
    Compile.compile_source
      "module m(input a: int<8>; output y: int<8>); begin if a > 0 then y := a; else y := 0 - a; end; end"
  in
  (* cond block, then, else, join *)
  Alcotest.(check int) "blocks" 4 (Cfg.n_blocks cfg);
  match Cfg.term cfg 0 with
  | Cfg.Branch (_, bt, bf) ->
      Alcotest.(check bool) "targets differ" true (bt <> bf)
  | _ -> Alcotest.fail "entry must branch"

let test_compile_for_trip () =
  let _, cfg =
    Compile.compile_source
      "module m(output y: int<8>); var i: int<8>; begin y := 0; for i := 0 to 9 do y := y + 2; end; end"
  in
  let trips =
    List.filter_map (fun bid -> Cfg.trip_count cfg bid) (Cfg.block_ids cfg)
  in
  Alcotest.(check (list int)) "for trip" [ 10 ] trips

let test_compile_while_trip () =
  let _, cfg =
    Compile.compile_source
      "module m(output y: int<8>); var i: int<8>; begin i := 2; y := 0; while i < 7 do y := y + 1; i := i + 1; end; end"
  in
  let trips = List.filter_map (fun bid -> Cfg.trip_count cfg bid) (Cfg.block_ids cfg) in
  Alcotest.(check (list int)) "while trip" [ 5 ] trips

let test_compile_no_trip_when_data_dependent () =
  let _, cfg = Compile.compile_source Hls_core.Workloads.gcd in
  let trips = List.filter_map (fun bid -> Cfg.trip_count cfg bid) (Cfg.block_ids cfg) in
  Alcotest.(check (list int)) "no trip" [] trips

let test_compile_variable_reuse_is_dataflow () =
  (* x := a + b; x := x * 2 — the two x values are separate arcs *)
  let _, cfg =
    Compile.compile_source
      "module m(input a, b: int<8>; output y: int<8>); var x: int<8>; begin x := a + b; x := x * 2; y := x; end"
  in
  let g = Cfg.dfg cfg 0 in
  (* only the reads of a and b exist; no read of x (forwarded) *)
  let reads = List.map fst (Dfg.reads g) in
  Alcotest.(check (list string)) "reads" [ "a"; "b" ] (List.sort compare reads)

(* ---- Liveness ---- *)

let test_liveness_sqrt () =
  let cfg = sqrt_cfg () in
  let live = Liveness.analyze ~live_at_exit:[ "y" ] cfg in
  (* loop body needs x, y, i on entry *)
  Alcotest.(check (list string)) "live into body" [ "i"; "x"; "y" ] (Liveness.live_in live 1);
  Alcotest.(check (list string)) "live out of exit" [ "y" ] (Liveness.live_out live 2);
  Alcotest.(check bool) "x interferes y" true (Liveness.interfere live "x" "y")

let test_liveness_disjoint () =
  let _, cfg =
    Compile.compile_source
      "module m(input a: int<8>; output y: int<8>); var p, q: int<8>; begin p := a + 1; y := p; q := a + 2; y := q; end"
  in
  ignore cfg;
  (* p and q are block-local here (single block): both dead at exit *)
  let live = Liveness.analyze ~live_at_exit:[ "y" ] cfg in
  Alcotest.(check bool) "p q no block-boundary interference" false
    (Liveness.interfere live "p" "q")

(* ---- properties ---- *)

let prop_compile_valid =
  QCheck.Test.make ~name:"compiled CFGs validate" ~count:200 Gen.program_arbitrary
    (fun seed ->
      let prog = Typecheck.check (Gen.program_of_seed seed) in
      let cfg = Compile.compile prog in
      Cfg.validate cfg;
      true)

let prop_dfg_ids_topological =
  QCheck.Test.make ~name:"random dfg ids topological" ~count:200 Gen.dfg_arbitrary
    (fun seed ->
      let g = Gen.dfg_of_seed seed in
      List.for_all
        (fun id -> List.for_all (fun a -> a < id) (Dfg.args g id))
        (Dfg.node_ids g))

let () =
  Alcotest.run "cdfg"
    [
      ( "op",
        [
          Alcotest.test_case "eval int" `Quick test_op_eval_int;
          Alcotest.test_case "eval cmp" `Quick test_op_eval_cmp;
          Alcotest.test_case "eval fix" `Quick test_op_eval_fix;
          Alcotest.test_case "errors" `Quick test_op_arity_errors;
        ] );
      ( "dfg",
        [
          Alcotest.test_case "invariants" `Quick test_dfg_invariants;
          Alcotest.test_case "fu classes" `Quick test_dfg_classes;
          Alcotest.test_case "path length" `Quick test_dfg_path_length;
          QCheck_alcotest.to_alcotest prop_dfg_ids_topological;
        ] );
      ( "graph_algo",
        [
          Alcotest.test_case "topo sort" `Quick test_topo_sort;
          Alcotest.test_case "dominators+loops" `Quick test_dominators_and_loops;
          Alcotest.test_case "longest path" `Quick test_longest_path;
        ] );
      ( "compile",
        [
          Alcotest.test_case "sqrt structure (Fig 1)" `Quick test_compile_sqrt_structure;
          Alcotest.test_case "if/else" `Quick test_compile_if_else;
          Alcotest.test_case "for trip count" `Quick test_compile_for_trip;
          Alcotest.test_case "while trip count" `Quick test_compile_while_trip;
          Alcotest.test_case "data-dependent loop" `Quick test_compile_no_trip_when_data_dependent;
          Alcotest.test_case "variable reuse" `Quick test_compile_variable_reuse_is_dataflow;
          QCheck_alcotest.to_alcotest prop_compile_valid;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "sqrt" `Quick test_liveness_sqrt;
          Alcotest.test_case "disjoint" `Quick test_liveness_disjoint;
        ] );
    ]
