(* Shared generators for the property-based tests: random DAGs for the
   schedulers, random straight-line/structured programs for semantic-
   preservation checks, random intervals for register allocation. *)

open Hls_lang

let int_ty = Ast.Tint 16

(* ---- random DFGs (single block, integer ops, no division) ---- *)

let dfg_of_seed ?(max_ops = 14) seed =
  let rng = Random.State.make [| seed |] in
  let g = Hls_cdfg.Dfg.create () in
  let a = Hls_cdfg.Dfg.add g (Hls_cdfg.Op.Read "a") [] int_ty in
  let b = Hls_cdfg.Dfg.add g (Hls_cdfg.Op.Read "b") [] int_ty in
  let values = ref [ a; b ] in
  let pick () = List.nth !values (Random.State.int rng (List.length !values)) in
  let n_ops = 2 + Random.State.int rng (max_ops - 1) in
  for _ = 1 to n_ops do
    let x = pick () and y = pick () in
    let op =
      match Random.State.int rng 5 with
      | 0 -> Hls_cdfg.Op.Add
      | 1 -> Hls_cdfg.Op.Sub
      | 2 -> Hls_cdfg.Op.Mul
      | 3 -> Hls_cdfg.Op.And
      | _ -> Hls_cdfg.Op.Xor
    in
    let nid = Hls_cdfg.Dfg.add g op [ x; y ] int_ty in
    values := nid :: !values
  done;
  (* write the most recent value so the graph has a sink *)
  (match !values with
  | last :: _ -> ignore (Hls_cdfg.Dfg.add g (Hls_cdfg.Op.Write "out") [ last ] int_ty)
  | [] -> ());
  g

let dfg_arbitrary =
  QCheck.make
    ~print:(fun seed -> Printf.sprintf "dfg seed %d" seed)
    QCheck.Gen.(0 -- 10_000)

(* ---- random structured programs ---- *)

(* Expression over declared variables; integer-only, division-free so no
   runtime traps, bounded depth. *)
let rec gen_expr rng vars depth : Ast.expr =
  if depth = 0 || Random.State.int rng 3 = 0 then
    match Random.State.int rng 2 with
    | 0 -> Builder.v (List.nth vars (Random.State.int rng (List.length vars)))
    | _ -> Builder.int (Random.State.int rng 64)
  else begin
    let a = gen_expr rng vars (depth - 1) in
    let b = gen_expr rng vars (depth - 1) in
    match Random.State.int rng 6 with
    | 0 -> Builder.(a + b)
    | 1 -> Builder.(a - b)
    | 2 -> Builder.(a * b)
    | 3 -> Builder.(a && b)
    | 4 -> Builder.xor a b
    | _ -> Builder.(a + int 1)
  end

let gen_cond rng vars depth : Ast.expr =
  let a = gen_expr rng vars depth in
  let b = gen_expr rng vars depth in
  match Random.State.int rng 4 with
  | 0 -> Builder.(a < b)
  | 1 -> Builder.(a > b)
  | 2 -> Builder.(a = b)
  | _ -> Builder.(a <> b)

(* [depth] picks a distinct counter variable per loop-nesting level so
   nested counted loops never share a counter (which would not
   terminate). *)
let rec gen_stmts rng vars budget depth : Ast.stmt list =
  if budget <= 0 || depth > 3 then []
  else begin
    let target = List.nth vars (Random.State.int rng (List.length vars)) in
    let stmt, cost =
      match Random.State.int rng 8 with
      | 0 | 1 | 2 | 3 -> (Builder.( <-- ) target (gen_expr rng vars 3), 1)
      | 4 | 5 ->
          let half = budget / 2 in
          let then_ = gen_stmts rng vars half depth in
          let else_ =
            if Random.State.bool rng then gen_stmts rng vars half depth else []
          in
          ( Builder.if_ (gen_cond rng vars 2)
              (if then_ = [] then [ Builder.( <-- ) target (Builder.int 1) ] else then_)
              else_,
            2 )
      | 6 ->
          let counter = Printf.sprintf "k%d" depth in
          let body = gen_stmts rng vars (budget / 2) (depth + 1) in
          ( Builder.for_ counter ~from:(Builder.int 0)
              ~to_:(Builder.int (Random.State.int rng 4))
              (if body = [] then
                 [ Builder.( <-- ) target Builder.(v target + int 1) ]
               else body),
            3 )
      | _ -> (Builder.( <-- ) target (gen_expr rng vars 2), 1)
    in
    stmt :: gen_stmts rng vars (budget - cost) depth
  end

let program_of_seed ?(budget = 8) seed : Ast.program =
  let rng = Random.State.make [| seed |] in
  let vars = [ "p"; "q"; "r" ] in
  let body0 = gen_stmts rng vars budget 0 in
  let body =
    if body0 = [] then [ Builder.( <-- ) "p" Builder.(v "a" + v "b") ] else body0
  in
  Builder.program "randprog"
    ~ports:
      [
        Builder.in_ "a" int_ty;
        Builder.in_ "b" int_ty;
        Builder.out "o1" int_ty;
        Builder.out "o2" int_ty;
      ]
    ~vars:
      [
        Builder.local "p" int_ty;
        Builder.local "q" int_ty;
        Builder.local "r" int_ty;
        Builder.local "k0" (Ast.Tint 8);
        Builder.local "k1" (Ast.Tint 8);
        Builder.local "k2" (Ast.Tint 8);
        Builder.local "k3" (Ast.Tint 8);
      ]
    ([
       Builder.( <-- ) "p" (Builder.v "a");
       Builder.( <-- ) "q" (Builder.v "b");
       Builder.( <-- ) "r" Builder.(v "a" - v "b");
     ]
    @ body
    @ [
        Builder.( <-- ) "o1" Builder.(v "p" + v "q");
        Builder.( <-- ) "o2" (Builder.v "r");
      ])

let program_arbitrary =
  QCheck.make
    ~print:(fun seed ->
      Printf.sprintf "program seed %d:\n%s" seed
        (Pretty.program_to_string (program_of_seed seed)))
    QCheck.Gen.(0 -- 5_000)

(* ---- random intervals ---- *)

let intervals_of_seed seed =
  let rng = Random.State.make [| seed |] in
  let n = 1 + Random.State.int rng 20 in
  List.init n (fun i ->
      let lo = Random.State.int rng 20 in
      let hi = lo + Random.State.int rng 10 in
      (i, Hls_util.Interval.make lo hi))

let intervals_arbitrary =
  QCheck.make
    ~print:(fun seed -> Printf.sprintf "intervals seed %d" seed)
    QCheck.Gen.(0 -- 10_000)
