(* Tests for the BSL frontend: lexer, parser, pretty-printer round trips,
   and the type checker's acceptance and rejection rules. *)

open Hls_lang

(* ---- lexer ---- *)

let toks src = List.map (fun (l : Lexer.lexed) -> l.Lexer.tok) (Lexer.tokenize src)

let test_lex_basic () =
  (match toks "x := a + 42;" with
  | [ IDENT "x"; ASSIGN; IDENT "a"; PLUS; INT 42; SEMI; EOF ] -> ()
  | ts ->
      Alcotest.failf "unexpected tokens: %s"
        (String.concat " " (List.map Lexer.token_to_string ts)));
  match toks "y := 0.5 * x;" with
  | [ IDENT "y"; ASSIGN; REAL 0.5; STAR; IDENT "x"; SEMI; EOF ] -> ()
  | ts ->
      Alcotest.failf "unexpected tokens: %s"
        (String.concat " " (List.map Lexer.token_to_string ts))

let test_lex_operators () =
  match toks "< <= << <> > >= >> = := :" with
  | [ LT; LE; SHL; NE; GT; GE; SHR; EQ; ASSIGN; COLON; EOF ] -> ()
  | ts ->
      Alcotest.failf "got: %s" (String.concat " " (List.map Lexer.token_to_string ts))

let test_lex_keywords_case_insensitive () =
  match toks "MODULE Begin END" with
  | [ KW_MODULE; KW_BEGIN; KW_END; EOF ] -> ()
  | _ -> Alcotest.fail "keywords should be case-insensitive"

let test_lex_comments_and_positions () =
  let lexed = Lexer.tokenize "a -- comment to eol\nb" in
  (match List.map (fun (l : Lexer.lexed) -> l.Lexer.tok) lexed with
  | [ IDENT "a"; IDENT "b"; EOF ] -> ()
  | _ -> Alcotest.fail "comment not skipped");
  match lexed with
  | [ _; b; _ ] ->
      Alcotest.(check int) "line" 2 b.Lexer.tpos.Ast.line;
      Alcotest.(check int) "col" 1 b.Lexer.tpos.Ast.col
  | _ -> Alcotest.fail "arity"

let test_lex_illegal () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Lexer.tokenize "a $ b");
       false
     with Ast.Frontend_error (_, _) -> true)

(* ---- parser ---- *)

let test_parse_precedence () =
  let e = Parser.parse_expr "1 + 2 * 3" in
  (match e.Ast.e with
  | Ast.Ebin (Ast.Add, { e = Ast.Eint 1; _ }, { e = Ast.Ebin (Ast.Mul, _, _); _ }) -> ()
  | _ -> Alcotest.fail "mul should bind tighter than add");
  let e = Parser.parse_expr "a < b + 1" in
  (match e.Ast.e with
  | Ast.Ebin (Ast.Lt, _, { e = Ast.Ebin (Ast.Add, _, _); _ }) -> ()
  | _ -> Alcotest.fail "add should bind tighter than compare");
  let e = Parser.parse_expr "a or b and c" in
  match e.Ast.e with
  | Ast.Ebin (Ast.Or, _, { e = Ast.Ebin (Ast.And, _, _); _ }) -> ()
  | _ -> Alcotest.fail "and should bind tighter than or"

let test_parse_unary_and_parens () =
  let e = Parser.parse_expr "-(a + b) * not c" in
  match e.Ast.e with
  | Ast.Ebin (Ast.Mul, { e = Ast.Eun (Ast.Neg, _); _ }, { e = Ast.Eun (Ast.Not, _); _ }) ->
      ()
  | _ -> Alcotest.fail "unary structure"

let test_parse_shift_assoc () =
  let e = Parser.parse_expr "x >> 1 >> 2" in
  match e.Ast.e with
  | Ast.Ebin (Ast.Shr, { e = Ast.Ebin (Ast.Shr, _, _); _ }, { e = Ast.Eint 2; _ }) -> ()
  | _ -> Alcotest.fail "shift left-assoc"

let small_module =
  {|
module m(input a, b: int<8>; output c: int<8>);
var t: int<8>;
begin
  t := a + b;
  if t > 3 then
    c := t;
  else
    c := 0;
  end;
  while t > 0 do
    t := t - 1;
  end;
  repeat
    t := t + 1;
  until t = 4;
  for t := 0 to 3 do
    c := c + 1;
  end;
end
|}

let test_parse_module () =
  let p = Parser.parse small_module in
  Alcotest.(check string) "name" "m" p.Ast.mname;
  Alcotest.(check int) "ports" 3 (List.length p.Ast.ports);
  Alcotest.(check int) "vars" 1 (List.length p.Ast.vars);
  Alcotest.(check int) "stmts" 5 (List.length p.Ast.body)

let test_parse_port_groups () =
  let p =
    Parser.parse "module g(input a, b: int<4>; output y: bool); begin y := a > b; end"
  in
  match p.Ast.ports with
  | [ { Ast.pname = "a"; pdir = Ast.Input; pty = Ast.Tint 4 };
      { Ast.pname = "b"; pdir = Ast.Input; _ };
      { Ast.pname = "y"; pdir = Ast.Output; pty = Ast.Tbool } ] ->
      ()
  | _ -> Alcotest.fail "port grouping"

let expect_parse_error src =
  try
    ignore (Parser.parse src);
    Alcotest.failf "expected syntax error in %S" src
  with Ast.Frontend_error (_, _) -> ()

let test_parse_errors () =
  expect_parse_error "module m(); begin x = 1; end";
  expect_parse_error "module m(); begin if x then y := 1; end";
  expect_parse_error "module m(); begin x := 1 end";
  expect_parse_error "module (); begin end";
  expect_parse_error "module m(input a: int<0>); begin end";
  expect_parse_error "module m(); begin end trailing"

(* ---- pretty / round trip ---- *)

let rec strip_expr (e : Ast.expr) : Ast.expr =
  let node =
    match e.Ast.e with
    | Ast.Ebin (op, a, b) -> Ast.Ebin (op, strip_expr a, strip_expr b)
    | Ast.Eun (op, a) -> Ast.Eun (op, strip_expr a)
    | n -> n
  in
  { Ast.e = node; epos = Ast.dummy_pos }

let rec strip_stmt (s : Ast.stmt) : Ast.stmt =
  let node =
    match s.Ast.s with
    | Ast.Sassign (v, e) -> Ast.Sassign (v, strip_expr e)
    | Ast.Sif (c, a, b) ->
        Ast.Sif (strip_expr c, List.map strip_stmt a, List.map strip_stmt b)
    | Ast.Swhile (c, b) -> Ast.Swhile (strip_expr c, List.map strip_stmt b)
    | Ast.Srepeat (b, c) -> Ast.Srepeat (List.map strip_stmt b, strip_expr c)
    | Ast.Sfor (v, f, t, b) ->
        Ast.Sfor (v, strip_expr f, strip_expr t, List.map strip_stmt b)
    | Ast.Scall (name, args) -> Ast.Scall (name, List.map strip_expr args)
  in
  { Ast.s = node; spos = Ast.dummy_pos }

let strip_proc (pr : Ast.proc_def) =
  { pr with Ast.prbody = List.map strip_stmt pr.Ast.prbody }

let strip (p : Ast.program) =
  {
    p with
    Ast.body = List.map strip_stmt p.Ast.body;
    Ast.procs = List.map strip_proc p.Ast.procs;
  }

let test_roundtrip_fixed () =
  let p = Parser.parse small_module in
  let p2 = Parser.parse (Pretty.program_to_string p) in
  Alcotest.(check bool) "round trip" true (strip p = strip p2)

let prop_roundtrip =
  QCheck.Test.make ~name:"pretty-print/parse round trip" ~count:200 Gen.program_arbitrary
    (fun seed ->
      let p = Gen.program_of_seed seed in
      let p2 = Parser.parse (Pretty.program_to_string p) in
      strip p = strip p2)

(* ---- typecheck ---- *)

let tc src = Typecheck.check (Parser.parse src)

let expect_type_error src =
  try
    ignore (tc src);
    Alcotest.failf "expected type error in %S" src
  with Ast.Frontend_error (_, _) -> ()

let test_typecheck_ok () =
  let p = tc Hls_core.Workloads.sqrt_newton in
  Alcotest.(check string) "name" "sqrt" p.Typed.tname;
  (* literal adoption: 0.5 got the fix type *)
  let p2 = tc "module m(input x: fix<4,4>; output y: fix<4,4>); begin y := x * 0.5; end" in
  match p2.Typed.tbody with
  | [ Typed.TSassign (_, { Typed.te = Typed.TEbin (Ast.Mul, _, r); _ }) ] ->
      Alcotest.(check bool) "literal typed fix" true (r.Typed.ty = Ast.Tfix (4, 4))
  | _ -> Alcotest.fail "shape"

let test_typecheck_int_widths_join () =
  let p =
    tc
      "module m(input a: int<4>; input b: int<8>; output y: int<8>); begin y := a + b; end"
  in
  match p.Typed.tbody with
  | [ Typed.TSassign (_, e) ] ->
      Alcotest.(check bool) "join" true (e.Typed.ty = Ast.Tint 8)
  | _ -> Alcotest.fail "shape"

let test_typecheck_errors () =
  expect_type_error "module m(input a: int<4>); begin a := 1; end";
  expect_type_error "module m(output y: int<4>); begin y := z; end";
  expect_type_error
    "module m(input a: fix<4,4>; input b: fix<2,6>; output y: fix<4,4>); begin y := a + b; end";
  expect_type_error "module m(output y: int<4>); begin if y then y := 1; end; end";
  expect_type_error "module m(output y: int<4>); begin y := 0.5; end";
  expect_type_error "module m(output y: bool); begin y := true + false; end";
  expect_type_error
    "module m(input a: fix<4,4>; input s: fix<4,4>; output y: fix<4,4>); begin y := a << s; end";
  expect_type_error
    "module m(input a: fix<4,4>; output y: fix<4,4>); var f: fix<4,4>; begin for f := 0 to 3 do y := a; end; end";
  expect_type_error "module m(input a: int<4>); var a: int<4>; begin end";
  expect_type_error "module m(input a: fix<4,4>; output y: int<8>); begin y := a; end"

(* ---- procedures and inline expansion ---- *)

let proc_module =
  {|
module m(input a, b: int<16>; output y, z: int<16>);
proc mac(input p, q: int<16>; output r: int<16>);
var t: int<16>;
begin
  t := p * q;
  r := t + p;
end;
proc twice_mac(input p: int<16>; output r: int<16>);
begin
  call mac(p, p, r);
  call mac(r, p, r);
end;
begin
  call mac(a, b, y);
  call twice_mac(a + 1, z);
end
|}

let test_proc_parse_roundtrip () =
  let p = Parser.parse proc_module in
  Alcotest.(check int) "two procs" 2 (List.length p.Ast.procs);
  let p2 = Parser.parse (Pretty.program_to_string p) in
  Alcotest.(check bool) "round trip" true (strip p = strip p2)

let test_inline_expand () =
  let p = Inline.expand (Parser.parse proc_module) in
  Alcotest.(check int) "procs gone" 0 (List.length p.Ast.procs);
  (* type checks after expansion, and computes the right values *)
  let tp = Typecheck.check p in
  let out = Hls_sim.Beh_sim.run tp ~inputs:[ ("a", 3); ("b", 4) ] in
  (* mac(3,4,y): y = 3*4+3 = 15 *)
  Alcotest.(check int) "y" 15 (List.assoc "y" out);
  (* twice_mac(4,z): mac(4,4,z): z=4*4+4=20; mac(20,4,z): z=20*4+20=100 *)
  Alcotest.(check int) "z" 100 (List.assoc "z" out)

let test_inline_argument_evaluated_once () =
  (* input actual is bound before the body: uses of the parameter see one
     consistent value even if the body overwrites the source variable *)
  let src =
    {|
module m(input a: int<16>; output y: int<16>);
proc p(input v: int<16>; output r: int<16>);
begin
  r := v + v;
end;
begin
  y := a;
  call p(y + 1, y);
end
|}
  in
  let tp = Typecheck.check (Inline.expand (Parser.parse src)) in
  let out = Hls_sim.Beh_sim.run tp ~inputs:[ ("a", 10) ] in
  Alcotest.(check int) "y = (a+1)*2" 22 (List.assoc "y" out)

let expect_inline_error src =
  try
    ignore (Inline.expand (Parser.parse src));
    Alcotest.failf "expected inline error"
  with Ast.Frontend_error (_, _) -> ()

let test_inline_errors () =
  (* unknown procedure *)
  expect_inline_error
    "module m(output y: int<8>); begin call nosuch(y); end";
  (* arity *)
  expect_inline_error
    "module m(output y: int<8>); proc p(input a: int<8>); begin end; begin call p(1, 2); end";
  (* output must be a variable *)
  expect_inline_error
    "module m(output y: int<8>); proc p(output r: int<8>); begin r := 1; end; begin call p(1 + 2); end";
  (* recursion *)
  expect_inline_error
    "module m(output y: int<8>); proc p(output r: int<8>); begin call p(r); end; begin call p(y); end"

let test_inline_through_flow () =
  (* the whole synthesis flow accepts procedures *)
  let d = Hls_core.Flow.synthesize proc_module in
  match Hls_core.Flow.verify ~runs:10 d with
  | Ok () -> ()
  | Error e -> Alcotest.failf "cosim: %s" e

let prop_generated_programs_typecheck =
  QCheck.Test.make ~name:"generated programs typecheck" ~count:200 Gen.program_arbitrary
    (fun seed ->
      ignore (Typecheck.check (Gen.program_of_seed seed));
      true)

let () =
  Alcotest.run "lang"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic" `Quick test_lex_basic;
          Alcotest.test_case "operators" `Quick test_lex_operators;
          Alcotest.test_case "keywords" `Quick test_lex_keywords_case_insensitive;
          Alcotest.test_case "comments+positions" `Quick test_lex_comments_and_positions;
          Alcotest.test_case "illegal char" `Quick test_lex_illegal;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "unary/parens" `Quick test_parse_unary_and_parens;
          Alcotest.test_case "shift assoc" `Quick test_parse_shift_assoc;
          Alcotest.test_case "module" `Quick test_parse_module;
          Alcotest.test_case "port groups" `Quick test_parse_port_groups;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "pretty",
        [
          Alcotest.test_case "round trip" `Quick test_roundtrip_fixed;
          QCheck_alcotest.to_alcotest prop_roundtrip;
        ] );
      ( "inline",
        [
          Alcotest.test_case "parse+roundtrip" `Quick test_proc_parse_roundtrip;
          Alcotest.test_case "expansion semantics" `Quick test_inline_expand;
          Alcotest.test_case "argument bound once" `Quick test_inline_argument_evaluated_once;
          Alcotest.test_case "errors" `Quick test_inline_errors;
          Alcotest.test_case "flow end to end" `Quick test_inline_through_flow;
        ] );
      ( "typecheck",
        [
          Alcotest.test_case "accepts" `Quick test_typecheck_ok;
          Alcotest.test_case "width join" `Quick test_typecheck_int_widths_join;
          Alcotest.test_case "rejects" `Quick test_typecheck_errors;
          QCheck_alcotest.to_alcotest prop_generated_programs_typecheck;
        ] );
    ]
