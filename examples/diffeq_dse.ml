(* Design-space exploration on the HAL differential-equation benchmark:
   sweep resource limits and schedulers, print both trade-off tables and
   the Pareto front — the "ability to search the design space" of
   section 1.2.

   Both sweeps run through one shared DSE engine, so the second sweep
   reuses the first's frontend/midend (and any coinciding schedules and
   backends) from the cache, on worker domains when the hardware has
   them ([-j N] to override).

     dune exec examples/diffeq_dse.exe *)

open Hls_core

let jobs =
  let rec find = function
    | "-j" :: n :: _ -> ( try int_of_string n with _ -> 4)
    | _ :: rest -> find rest
    | [] -> 4
  in
  find (Array.to_list Sys.argv)

let () =
  let src = Workloads.diffeq in
  let engine = Dse.create ~config:{ Dse.default_config with Dse.jobs } src in
  Timing.reset ();
  print_endline "== resource-limit sweep (list scheduling) ==";
  let by_limits = Explore.sweep_limits ~engine src in
  print_string (Explore.table by_limits);

  print_endline "\n== scheduler sweep (two functional units) ==";
  let by_sched = Explore.sweep_schedulers ~engine src in
  print_string (Explore.table ~timings:true by_sched);

  print_endline "\n== Pareto frontier over both sweeps ==";
  let front = Explore.pareto (by_limits @ by_sched) in
  List.iter
    (fun (p : Explore.point) ->
      Printf.printf "  %-28s area %6d  latency %6.0f ns\n" p.Explore.label
        p.Explore.area p.Explore.latency_ns)
    front;

  print_endline "\n== engine cache ==";
  Format.printf "%a" Dse.pp_stats (Dse.stats engine);

  (* every explored design still computes the right answer *)
  let bad = ref 0 in
  List.iter
    (fun (p : Explore.point) ->
      match Flow.verify ~runs:5 p.Explore.design with
      | Ok () -> ()
      | Error e ->
          incr bad;
          Printf.printf "VERIFY FAILED (%s): %s\n" p.Explore.label e)
    (by_limits @ by_sched);
  if !bad = 0 then
    Printf.printf "\nall %d explored designs verified by co-simulation\n"
      (List.length by_limits + List.length by_sched)
