(* Full tour on the paper's sqrt example: the optimization levels and
   schedule lengths of Fig 2, loop unrolling as the paper suggests,
   Verilog and DOT emission of the final structure.

     dune exec examples/explore_sqrt.exe *)

open Hls_core
open Hls_sched

let compute_steps src ~level ~limits ~extra_passes =
  let prog = Hls_lang.Typecheck.check (Hls_lang.Inline.expand (Hls_lang.Parser.parse src)) in
  let cfg = Hls_cdfg.Compile.compile prog in
  let outputs = Flow.output_names prog in
  let cfg = Hls_transform.Passes.optimize ~level ~outputs cfg in
  let cfg =
    List.fold_left
      (fun cfg name ->
        let pass = Hls_transform.Passes.find_exn name in
        let cfg, _ = pass.Hls_transform.Passes.run ~outputs cfg in
        cfg)
      cfg extra_passes
  in
  let cs = Cfg_sched.make cfg ~scheduler:(List_sched.schedule ~limits) in
  Cfg_sched.compute_steps cs

let () =
  let src = Workloads.sqrt_newton in
  Printf.printf "Fig 2 schedule lengths:\n";
  Printf.printf "  unoptimized, serial (paper: 23):        %d control steps\n"
    (compute_steps src ~level:`None ~limits:Limits.serial ~extra_passes:[]);
  Printf.printf "  optimized, two FUs  (paper: 10):        %d control steps\n"
    (compute_steps src ~level:`Standard ~limits:Limits.two_fu
       ~extra_passes:[ "loop-recode"; "dce" ]);
  Printf.printf "  fully unrolled, two FUs:                %d control steps\n"
    (compute_steps src ~level:`Aggressive ~limits:Limits.two_fu ~extra_passes:[]);
  Printf.printf "  fully unrolled, unlimited FUs:          %d control steps\n\n"
    (compute_steps src ~level:`Aggressive ~limits:Limits.Unlimited ~extra_passes:[]);

  (* synthesize the optimized two-FU design and emit its structure *)
  let design = Flow.synthesize src in
  let verilog = Hls_rtl.Emit.verilog ~name:"sqrt" design.Flow.datapath in
  let dot = Hls_rtl.Emit.dot design.Flow.datapath in
  let write path text =
    let oc = open_out path in
    output_string oc text;
    close_out oc;
    Printf.printf "wrote %s (%d bytes)\n" path (String.length text)
  in
  write "sqrt.v" verilog;
  write "sqrt_datapath.dot" dot;
  write "sqrt_fsm.dot" (Hls_ctrl.Fsm.to_dot design.Flow.datapath.Hls_rtl.Datapath.fsm);

  print_newline ();
  Timing.reset ();
  print_string
    (Explore.table ~timings:true
       (Explore.sweep_limits ~config:{ Dse.default_config with Dse.jobs = 4 } src));
  print_newline ();
  match Flow.verify ~runs:20 design with
  | Ok () -> print_endline "co-simulation: 20 random vectors agree across all levels"
  | Error e -> Printf.printf "co-simulation FAILED: %s\n" e
